/**
 * @file
 * Tests for the deterministic fault-injection harness and the
 * CompileService's fault tolerance under it: scripted trigger replay,
 * retry-with-backoff recovery, delta-tier quarantine, shutdown
 * draining, and a soak test that drives a faulted service through a
 * mixed workload asserting no deadlock, no leaked promise, no cache
 * poisoning, and bit-identical survivors.
 *
 * Every test disarms the injector on exit (including failure exits, via
 * an RAII guard) — the injector is process-wide state and a leaked
 * script would corrupt unrelated tests.
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "baselines/backend_factory.h"
#include "common/error.h"
#include "common/fault_injection.h"
#include "common/hash.h"
#include "common/logging.h"
#include "core/compile_service.h"
#include "core/compiler.h"
#include "workloads/workloads.h"

namespace mussti {
namespace {

/** Disarm on scope exit so a failing test cannot leak its script. */
struct ScopedFaultScript
{
    explicit ScopedFaultScript(FaultScript script)
    {
        FaultInjector::arm(std::move(script));
    }
    ~ScopedFaultScript() { FaultInjector::disarm(); }

    ScopedFaultScript(const ScopedFaultScript &) = delete;
    ScopedFaultScript &operator=(const ScopedFaultScript &) = delete;
};

/** Content fingerprint of a compile result (schedule + metrics). */
std::uint64_t
fingerprint(const CompileResult &result)
{
    Fnv1a hash;
    hash.update(static_cast<std::uint64_t>(result.schedule.ops.size()));
    for (const ScheduledOp &op : result.schedule.ops) {
        hash.update(static_cast<int>(op.kind));
        hash.update(op.q0);
        hash.update(op.q1);
        hash.update(op.zoneFrom);
        hash.update(op.zoneTo);
        hash.update(op.durationUs);
        hash.update(op.circuitGate);
        hash.update(op.inserted);
    }
    hash.update(result.metrics.shuttleCount);
    hash.update(result.metrics.ionSwapCount);
    hash.update(result.metrics.gate1qCount);
    hash.update(result.metrics.gate2qCount);
    hash.update(result.metrics.fiberGateCount);
    hash.update(result.metrics.executionTimeUs);
    hash.update(result.metrics.lnFidelity);
    hash.update(result.swapInsertions);
    hash.update(result.evictions);
    return hash.digest();
}

int
soakJobs(int fallback)
{
    const char *env = std::getenv("MUSSTI_FAULT_SOAK_JOBS");
    if (env == nullptr || *env == '\0')
        return fallback;
    const int parsed = std::atoi(env);
    return parsed > 0 ? parsed : fallback;
}

std::shared_ptr<const ICompilerBackend>
deltaBackend()
{
    MusstiConfig config;
    config.deltaCompile = true;
    config.deltaCheckpointGates = 16;
    return makeMusstiBackend(config);
}

TEST(FaultInjector, DisarmedReportsNothing)
{
    FaultInjector::disarm();
    EXPECT_FALSE(FaultInjector::armed());
    EXPECT_FALSE(FaultInjector::at(FaultSite::PassBoundary).has_value());
    EXPECT_FALSE(FaultInjector::fires(FaultSite::CacheStore));
    EXPECT_NO_THROW(FaultInjector::maybeThrow(FaultSite::WorkerDequeue));
}

TEST(FaultInjector, TriggerFiresOnExactVisit)
{
    FaultScript script;
    script.triggers.push_back(
        {FaultSite::WorkerDequeue, 2, ErrorCategory::Transient,
         "fault.injected"});
    const ScopedFaultScript armed(script);

    EXPECT_FALSE(FaultInjector::fires(FaultSite::WorkerDequeue)); // 0
    EXPECT_FALSE(FaultInjector::fires(FaultSite::WorkerDequeue)); // 1
    EXPECT_TRUE(FaultInjector::fires(FaultSite::WorkerDequeue));  // 2
    EXPECT_FALSE(FaultInjector::fires(FaultSite::WorkerDequeue)); // 3
    EXPECT_EQ(FaultInjector::visitCount(FaultSite::WorkerDequeue), 4u);
    EXPECT_EQ(FaultInjector::firedCount(FaultSite::WorkerDequeue), 1u);

    // Other sites are untouched.
    EXPECT_EQ(FaultInjector::visitCount(FaultSite::PassBoundary), 0u);
}

TEST(FaultInjector, MaybeThrowRaisesTheScriptedError)
{
    FaultScript script;
    script.triggers.push_back(
        {FaultSite::PassBoundary, 0, ErrorCategory::Transient,
         "fault.injected"});
    script.triggers.push_back(
        {FaultSite::PassBoundary, 1, ErrorCategory::ResourceExhausted,
         "fault.oom"});
    const ScopedFaultScript armed(script);

    try {
        FaultInjector::maybeThrow(FaultSite::PassBoundary);
        FAIL();
    } catch (const MusstiError &err) {
        EXPECT_EQ(err.category(), ErrorCategory::Transient);
        EXPECT_EQ(err.code(), "fault.injected");
    }
    const ScopedFatalSilence quiet; // ResourceExhausted echoes
    try {
        FaultInjector::maybeThrow(FaultSite::PassBoundary);
        FAIL();
    } catch (const MusstiError &err) {
        EXPECT_EQ(err.category(), ErrorCategory::ResourceExhausted);
        EXPECT_EQ(err.code(), "fault.oom");
    }
    EXPECT_NO_THROW(FaultInjector::maybeThrow(FaultSite::PassBoundary));
}

TEST(FaultInjector, ProbabilisticModeIsDeterministicPerSeed)
{
    auto record = [](std::uint64_t seed) {
        FaultScript script;
        script.probability = 0.5;
        script.seed = seed;
        script.probabilisticSites = {FaultSite::CacheStore};
        const ScopedFaultScript armed(script);
        std::vector<bool> fired;
        for (int i = 0; i < 64; ++i)
            fired.push_back(FaultInjector::fires(FaultSite::CacheStore));
        return fired;
    };

    const auto a = record(7);
    const auto b = record(7);
    const auto c = record(8);
    EXPECT_EQ(a, b); // same seed → identical firing pattern
    EXPECT_NE(a, c); // different seed → different pattern
    int fired = 0;
    for (const bool f : a)
        fired += f;
    EXPECT_GT(fired, 8);      // p=0.5 over 64 visits actually fires
    EXPECT_LT(fired, 56);     // ... and actually passes too
}

TEST(FaultInjector, ArmResetsCounters)
{
    {
        FaultScript script;
        const ScopedFaultScript armed(script);
        (void)FaultInjector::fires(FaultSite::CacheStore);
        EXPECT_EQ(FaultInjector::visitCount(FaultSite::CacheStore), 1u);
    }
    FaultScript script;
    const ScopedFaultScript rearmed(script);
    EXPECT_EQ(FaultInjector::visitCount(FaultSite::CacheStore), 0u);
}

TEST(FaultService, RetryRecoversFromTransientFaults)
{
    CompileServiceConfig config;
    config.numThreads = 1;
    config.maxAttempts = 3;
    config.retryBackoffBaseUs = 1;
    config.retryBackoffMaxUs = 10;
    CompileService service(config);
    const auto backend = makeMusstiBackend();
    const Circuit qc = makeBenchmark("ghz", 30);
    const CompileResult reference = backend->compile(qc);

    FaultScript script;
    script.triggers.push_back({FaultSite::WorkerDequeue, 0,
                               ErrorCategory::Transient, "fault.injected"});
    script.triggers.push_back({FaultSite::WorkerDequeue, 1,
                               ErrorCategory::Transient, "fault.injected"});
    const ScopedFaultScript armed(script);

    CompileOutcome outcome =
        service.submitOutcome({backend, qc, {}, {}, {}}).get();
    ASSERT_TRUE(outcome.ok());
    EXPECT_EQ(outcome.attempts, 3);
    EXPECT_EQ(fingerprint(outcome.value()), fingerprint(reference));

    const CompileService::CacheStats stats = service.cacheStats();
    EXPECT_EQ(stats.jobsRetried, 2u);
    EXPECT_EQ(stats.jobsFailed, 0u);
}

TEST(FaultService, RetryGivesUpAfterMaxAttempts)
{
    CompileServiceConfig config;
    config.numThreads = 1;
    config.maxAttempts = 3;
    config.retryBackoffBaseUs = 1;
    config.retryBackoffMaxUs = 10;
    CompileService service(config);
    const auto backend = makeMusstiBackend();

    FaultScript script;
    for (std::uint64_t visit = 0; visit < 3; ++visit)
        script.triggers.push_back({FaultSite::WorkerDequeue, visit,
                                   ErrorCategory::Transient,
                                   "fault.injected"});
    const ScopedFaultScript armed(script);

    CompileOutcome outcome =
        service.submitOutcome({backend, makeGhz(20), {}, {}, {}}).get();
    ASSERT_FALSE(outcome.ok());
    EXPECT_EQ(outcome.attempts, 3);
    EXPECT_EQ(outcome.errorInfo().category(), ErrorCategory::Transient);
    EXPECT_EQ(outcome.errorInfo().code(), "fault.injected");

    const CompileService::CacheStats stats = service.cacheStats();
    EXPECT_EQ(stats.jobsFailed, 1u);
    EXPECT_EQ(stats.jobsRetried, 2u);
}

TEST(FaultService, NonTransientInjectionNeverRetries)
{
    const ScopedFatalSilence quiet; // ResourceExhausted echoes
    CompileServiceConfig config;
    config.numThreads = 1;
    CompileService service(config);

    FaultScript script;
    script.triggers.push_back({FaultSite::WorkerDequeue, 0,
                               ErrorCategory::ResourceExhausted,
                               "fault.oom"});
    const ScopedFaultScript armed(script);

    CompileOutcome outcome =
        service.submitOutcome(
            {makeMusstiBackend(), makeGhz(20), {}, {}, {}}).get();
    ASSERT_FALSE(outcome.ok());
    EXPECT_EQ(outcome.attempts, 1);
    EXPECT_EQ(outcome.errorInfo().category(),
              ErrorCategory::ResourceExhausted);
    EXPECT_EQ(service.cacheStats().jobsRetried, 0u);
}

TEST(FaultService, FailedJobsNeverPoisonTheResultCache)
{
    CompileServiceConfig config;
    config.numThreads = 1;
    config.maxAttempts = 1; // fail fast, no retry
    CompileService service(config);
    const auto backend = makeMusstiBackend();
    const Circuit qc = makeBenchmark("adder", 30);
    const CompileResult reference = backend->compile(qc);

    {
        FaultScript script;
        script.triggers.push_back({FaultSite::WorkerDequeue, 0,
                                   ErrorCategory::Transient,
                                   "fault.injected"});
        const ScopedFaultScript armed(script);
        const CompileOutcome failed =
            service.submitOutcome({backend, qc, {}, {}, {}}).get();
        ASSERT_FALSE(failed.ok());
    }

    // Disarmed resubmission must compile fresh (no poisoned entry was
    // banked) and match the fault-free reference bit for bit.
    const CompileOutcome retried =
        service.submitOutcome({backend, qc, {}, {}, {}}).get();
    ASSERT_TRUE(retried.ok());
    EXPECT_EQ(service.cacheHits(), 0u);
    EXPECT_EQ(service.jobsExecuted(), 1u);
    EXPECT_EQ(fingerprint(retried.value()), fingerprint(reference));
}

TEST(FaultService, QuarantineAfterConsecutiveResumeFallbacks)
{
    const ScopedFatalSilence quiet(/*silence_warns=*/true); // quarantine warn
    CompileServiceConfig config;
    config.numThreads = 1;
    config.snapshotCacheCapacity = 16;
    config.deltaQuarantineThreshold = 3;
    CompileService service(config);
    const auto backend = deltaBackend();

    // Every resume attempt degrades to a cold fallback.
    FaultScript script;
    script.probability = 1.0;
    script.probabilisticSites = {FaultSite::SnapshotResume};
    const ScopedFaultScript armed(script);

    // Base compile banks snapshots; each extension probes them, gets
    // its resume sabotaged, and falls back cold — growing the streak.
    (void)service.submitOutcome(
        {backend, makeIsing(24, 40), {}, {}, {}}).get();
    for (int steps = 41; steps <= 43; ++steps) {
        const CompileOutcome outcome = service.submitOutcome(
            {backend, makeIsing(24, steps), {}, {}, {}}).get();
        ASSERT_TRUE(outcome.ok()) << steps;
        EXPECT_FALSE(outcome.value().deltaResumed) << steps;
    }

    CompileService::CacheStats stats = service.cacheStats();
    EXPECT_TRUE(stats.deltaQuarantined);
    EXPECT_EQ(stats.deltaQuarantines, 1u);
    EXPECT_EQ(stats.deltaFallbacks, 3u);
    EXPECT_EQ(stats.deltaResumes, 0u);
    EXPECT_EQ(stats.snapshotCount, 0u); // tier cleared
    EXPECT_EQ(stats.snapshotBytes, 0u);
    const std::uint64_t probes_at_quarantine =
        stats.snapshotHits + stats.snapshotMisses;

    // Jobs after quarantine skip the tier entirely, still succeed, and
    // stay bit-identical to a direct fault-free compile.
    const Circuit later = makeIsing(24, 44);
    const CompileOutcome after =
        service.submitOutcome({backend, later, {}, {}, {}}).get();
    ASSERT_TRUE(after.ok());
    EXPECT_EQ(fingerprint(after.value()),
              fingerprint(backend->compile(later)));

    stats = service.cacheStats();
    EXPECT_EQ(stats.snapshotHits + stats.snapshotMisses,
              probes_at_quarantine); // no probe against a quarantined tier
    EXPECT_EQ(stats.deltaQuarantines, 1u); // quarantine fired exactly once
}

TEST(FaultService, ShutdownDrainsQueuedJobsAsCancelled)
{
    CompileServiceConfig config;
    config.numThreads = 1;
    CompileService service(config);
    const auto backend = makeMusstiBackend();

    std::vector<std::future<CompileOutcome>> futures;
    for (int i = 0; i < 16; ++i)
        futures.push_back(service.submitOutcome(
            {backend, makeBenchmark("qft", 36), {}, {}, {}}));
    service.shutdown();

    // Every promise resolves — either a completed compile or a clean
    // Cancelled drain; nothing deadlocks, nothing leaks.
    int cancelled = 0;
    for (auto &future : futures) {
        CompileOutcome outcome = future.get();
        if (outcome.ok())
            continue;
        EXPECT_EQ(outcome.errorInfo().category(),
                  ErrorCategory::Cancelled);
        ++cancelled;
    }
    EXPECT_GT(cancelled, 0); // 16 qft-36 compiles vs an immediate stop
    EXPECT_EQ(service.cacheStats().jobsCancelled,
              static_cast<std::uint64_t>(cancelled));

    // Shutdown is idempotent and submissions now resolve instantly.
    service.shutdown();
    CompileOutcome late =
        service.submitOutcome({backend, makeGhz(8), {}, {}, {}}).get();
    ASSERT_FALSE(late.ok());
    EXPECT_EQ(late.errorInfo().category(), ErrorCategory::Cancelled);
}

TEST(FaultService, SoakSurvivesScriptedFaultStorm)
{
    // The tentpole soak: a single service, a mixed workload (delta
    // pairs, grid jobs, invalid and pre-cancelled requests), and
    // probabilistic faults at every site plus explicit triggers. The
    // oracle: every future resolves; every failure is taxonomy-classed
    // (never Internal); every survivor is bit-identical to the
    // fault-free reference; and after disarming, failed requests
    // resubmitted to the SAME service compile fresh and match the
    // reference — the caches were never poisoned.
    const ScopedFatalSilence quiet(/*silence_warns=*/true);

    struct SoakJob
    {
        CompileRequest request;       ///< consumed by the faulted run
        CompileRequest again;         ///< copy for resubmission
        std::uint64_t reference = 0;  ///< fault-free fingerprint
        bool reference_ok = false;
    };

    const auto delta = deltaBackend();
    const auto plain = makeMusstiBackend();
    const auto grid = makeGridBackend("murali", GridConfig{2, 2, 16});
    const auto overflow = makeGridBackend("murali", GridConfig{2, 2, 4});
    const auto cancelled_token =
        std::make_shared<std::atomic<bool>>(true);

    auto makeJob = [](std::shared_ptr<const ICompilerBackend> backend,
                      Circuit circuit,
                      std::shared_ptr<const std::atomic<bool>> cancel =
                          nullptr) {
        CompileRequest request{backend, circuit, {}, {}, cancel};
        CompileRequest again{std::move(backend), std::move(circuit), {},
                             {}, std::move(cancel)};
        return SoakJob{std::move(request), std::move(again), 0, false};
    };

    std::vector<SoakJob> jobs;
    const int total = soakJobs(48);
    for (int i = 0; static_cast<int>(jobs.size()) < total; ++i) {
        // A delta pair (base + extension) exercises snapshot capture
        // and resume; the rest covers plain, grid, invalid, and
        // pre-cancelled shapes.
        jobs.push_back(makeJob(delta, makeIsing(24, 40 + (i % 3))));
        jobs.push_back(makeJob(delta, makeIsing(24, 41 + (i % 3))));
        jobs.push_back(makeJob(plain, makeBenchmark("ghz", 28 + i % 5)));
        jobs.push_back(makeJob(grid, makeBenchmark("adder", 30 + i % 3)));
        jobs.push_back(makeJob(overflow, makeGhz(32)));      // invalid
        jobs.push_back(makeJob(plain, makeGhz(16), cancelled_token));
    }
    while (static_cast<int>(jobs.size()) > total)
        jobs.pop_back();

    // Fault-free reference service (same config, no injection).
    CompileServiceConfig config;
    config.numThreads = 1;
    config.maxAttempts = 3;
    config.retryBackoffBaseUs = 1;
    config.retryBackoffMaxUs = 10;
    {
        CompileService reference(config);
        for (SoakJob &job : jobs) {
            CompileRequest copy = job.again;
            CompileOutcome outcome =
                reference.submitOutcome(std::move(copy)).get();
            job.reference_ok = outcome.ok();
            if (outcome.ok())
                job.reference = fingerprint(outcome.value());
        }
    }

    // The faulted run: all five sites probabilistic plus exact-replay
    // triggers, single-threaded so the visit sequence is deterministic.
    CompileService service(config);
    FaultScript script;
    script.probability = 0.05;
    script.seed = 0xf00dULL;
    script.probabilisticSites = {
        FaultSite::PassBoundary, FaultSite::SnapshotCapture,
        FaultSite::SnapshotResume, FaultSite::CacheStore,
        FaultSite::WorkerDequeue,
    };
    script.triggers.push_back({FaultSite::WorkerDequeue, 3,
                               ErrorCategory::ResourceExhausted,
                               "fault.oom"});
    script.triggers.push_back({FaultSite::PassBoundary, 10,
                               ErrorCategory::Transient,
                               "fault.injected"});
    std::vector<CompileOutcome> outcomes;
    {
        const ScopedFaultScript armed(script);
        std::vector<std::future<CompileOutcome>> futures;
        futures.reserve(jobs.size());
        for (SoakJob &job : jobs)
            futures.push_back(
                service.submitOutcome(std::move(job.request)));
        for (auto &future : futures)
            outcomes.push_back(future.get()); // resolves: no deadlock,
                                              // no leaked promise

        // Coverage: the storm actually exercised the instrumented sites.
        EXPECT_GT(FaultInjector::visitCount(FaultSite::WorkerDequeue), 0u);
        EXPECT_GT(FaultInjector::visitCount(FaultSite::PassBoundary), 0u);
        EXPECT_GT(FaultInjector::visitCount(FaultSite::CacheStore), 0u);
        EXPECT_GT(FaultInjector::visitCount(FaultSite::SnapshotCapture),
                  0u);
        EXPECT_GT(FaultInjector::visitCount(FaultSite::SnapshotResume),
                  0u);
    }

    int failed = 0;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const CompileOutcome &outcome = outcomes[i];
        if (outcome.ok()) {
            // Survivors are bit-identical to the fault-free reference
            // — degraded paths (dropped captures, sabotaged resumes,
            // skipped stores) may cost time, never correctness.
            ASSERT_TRUE(jobs[i].reference_ok) << "job " << i;
            EXPECT_EQ(fingerprint(outcome.value()), jobs[i].reference)
                << "job " << i;
            continue;
        }
        ++failed;
        // Failures carry the taxonomy; an Internal here means a fault
        // corrupted an invariant instead of failing cleanly.
        EXPECT_NE(outcome.errorInfo().category(),
                  ErrorCategory::Internal)
            << "job " << i << ": " << outcome.errorInfo().message();
        if (!jobs[i].reference_ok) {
            // Structurally bad requests fail with or without faults.
            continue;
        }
    }
    EXPECT_GT(failed, 0); // the storm actually felled some jobs

    // Accounting: every failed outcome was booked in exactly one
    // failure counter.
    const CompileService::CacheStats stats = service.cacheStats();
    EXPECT_EQ(stats.jobsFailed + stats.jobsTimedOut + stats.jobsCancelled,
              static_cast<std::uint64_t>(failed));

    // Disarmed resubmission of every faulted-out job to the SAME
    // service: the caches hold nothing poisoned, so each one compiles
    // to the exact reference result.
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        if (outcomes[i].ok() || !jobs[i].reference_ok)
            continue;
        CompileOutcome retried =
            service.submitOutcome(std::move(jobs[i].again)).get();
        ASSERT_TRUE(retried.ok()) << "job " << i;
        EXPECT_EQ(fingerprint(retried.value()), jobs[i].reference)
            << "job " << i;
    }
}

} // namespace
} // namespace mussti
