/**
 * @file
 * Tests for the circuit transformation passes: inverse cancellation,
 * rotation merging, relabeling, scrambling, and the joint fixed point.
 */
#include <gtest/gtest.h>

#include "circuit/transforms.h"
#include "workloads/workloads.h"

namespace mussti {
namespace {

TEST(Cancel, RemovesAdjacentSelfInversePairs)
{
    Circuit qc(2);
    qc.h(0);
    qc.h(0);
    qc.cx(0, 1);
    qc.cx(0, 1);
    const Circuit out = cancelAdjacentInverses(qc);
    EXPECT_EQ(out.size(), 0u);
}

TEST(Cancel, KeepsNonAdjacentPairsSeparatedByBlocker)
{
    Circuit qc(2);
    qc.cx(0, 1);
    qc.h(1); // blocks
    qc.cx(0, 1);
    const Circuit out = cancelAdjacentInverses(qc);
    EXPECT_EQ(out.size(), 3u);
}

TEST(Cancel, SkipsThroughDisjointGates)
{
    Circuit qc(4);
    qc.cx(0, 1);
    qc.cx(2, 3); // disjoint, does not block
    qc.cx(0, 1);
    const Circuit out = cancelAdjacentInverses(qc);
    EXPECT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].q0, 2);
}

TEST(Cancel, SymmetricGatesCancelWithSwappedOperands)
{
    Circuit qc(2);
    qc.cz(0, 1);
    qc.cz(1, 0);
    EXPECT_EQ(cancelAdjacentInverses(qc).size(), 0u);
}

TEST(Cancel, DirectionalCxDoesNotCancelSwapped)
{
    Circuit qc(2);
    qc.cx(0, 1);
    qc.cx(1, 0);
    EXPECT_EQ(cancelAdjacentInverses(qc).size(), 2u);
}

TEST(Cancel, RunsToFixedPoint)
{
    // h h h h collapses fully (two rounds needed for naive pairing).
    Circuit qc(1);
    for (int i = 0; i < 4; ++i)
        qc.h(0);
    EXPECT_EQ(cancelAdjacentInverses(qc).size(), 0u);
}

TEST(MergeRotations, SumsAngles)
{
    Circuit qc(1);
    qc.rz(0, 0.25);
    qc.rz(0, 0.5);
    const Circuit out = mergeRotations(qc);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_NEAR(out[0].param, 0.75, 1e-12);
}

TEST(MergeRotations, DropsIdentityResult)
{
    Circuit qc(1);
    qc.rz(0, 0.5);
    qc.rz(0, -0.5);
    EXPECT_EQ(mergeRotations(qc).size(), 0u);
}

TEST(MergeRotations, BlockedByInterveningGate)
{
    Circuit qc(2);
    qc.rz(0, 0.5);
    qc.cx(0, 1);
    qc.rz(0, 0.5);
    EXPECT_EQ(mergeRotations(qc).size(), 3u);
}

TEST(MergeRotations, DifferentAxesDoNotMerge)
{
    Circuit qc(1);
    qc.rz(0, 0.5);
    qc.rx(0, 0.5);
    EXPECT_EQ(mergeRotations(qc).size(), 2u);
}

TEST(Relabel, AppliesPermutation)
{
    Circuit qc(3);
    qc.cx(0, 2);
    const Circuit out = relabelQubits(qc, {2, 0, 1});
    EXPECT_EQ(out[0].q0, 2);
    EXPECT_EQ(out[0].q1, 1);
}

TEST(Relabel, RejectsNonPermutation)
{
    Circuit qc(2);
    qc.cx(0, 1);
    EXPECT_THROW(relabelQubits(qc, {0, 0}), std::runtime_error);
    EXPECT_THROW(relabelQubits(qc, {0}), std::runtime_error);
}

TEST(Scramble, PreservesStructure)
{
    const Circuit qc = makeAdder(16);
    const Circuit scrambled = scrambleQubits(qc, 5);
    EXPECT_EQ(scrambled.twoQubitCount(), qc.twoQubitCount());
    EXPECT_EQ(scrambled.size(), qc.size());
    // Locality is destroyed (interaction distance grows).
    EXPECT_GT(scrambled.stats().avgInteractionDistance,
              qc.stats().avgInteractionDistance);
}

TEST(Scramble, Deterministic)
{
    const Circuit qc = makeGhz(12);
    EXPECT_EQ(scrambleQubits(qc, 9), scrambleQubits(qc, 9));
}

TEST(Simplify, FixedPointCombinesPasses)
{
    Circuit qc(2);
    qc.rz(0, 0.5);
    qc.h(1);
    qc.h(1);
    qc.rz(0, -0.5);
    qc.cx(0, 1);
    const Circuit out = simplify(qc);
    EXPECT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].kind, GateKind::Cx);
}

TEST(Simplify, IdempotentOnCleanCircuits)
{
    const Circuit qc = makeGhz(8);
    EXPECT_EQ(simplify(qc), simplify(simplify(qc)));
}

} // namespace
} // namespace mussti
