/**
 * @file
 * Tests for the physics layer: Table 1 parameters, the shuttle emitter's
 * op streams, and the evaluator's time/fidelity accounting.
 */
#include <cmath>

#include <gtest/gtest.h>

#include "arch/eml_device.h"
#include "sim/evaluator.h"
#include "sim/params.h"
#include "sim/schedule.h"
#include "sim/shuttle_emitter.h"

namespace mussti {
namespace {

TEST(Params, Table1Defaults)
{
    const PhysicalParams p;
    EXPECT_DOUBLE_EQ(p.splitTimeUs, 80.0);
    EXPECT_DOUBLE_EQ(p.mergeTimeUs, 80.0);
    EXPECT_DOUBLE_EQ(p.ionSwapTimeUs, 40.0);
    EXPECT_DOUBLE_EQ(p.gate2qTimeUs, 40.0);
    EXPECT_DOUBLE_EQ(p.fiberGateTimeUs, 200.0);
    EXPECT_DOUBLE_EQ(p.gate1qFidelity, 0.9999);
    EXPECT_DOUBLE_EQ(p.fiberGateFidelity, 0.99);
    EXPECT_DOUBLE_EQ(p.t1Us, 600e6);
    EXPECT_DOUBLE_EQ(p.heatingRate, 0.001);
}

TEST(Params, TwoQubitFidelityQuadraticDecay)
{
    const PhysicalParams p;
    // 1 - N^2/25600: N=16 -> 0.99.
    EXPECT_NEAR(p.twoQubitGateFidelity(16), 0.99, 1e-12);
    EXPECT_GT(p.twoQubitGateFidelity(4), p.twoQubitGateFidelity(12));
}

TEST(Params, PerfectGateOverride)
{
    PhysicalParams p;
    p.perfectGate = true;
    EXPECT_DOUBLE_EQ(p.twoQubitGateFidelity(20), 0.9999);
}

TEST(Params, ShuttleFidelityEquation)
{
    const PhysicalParams p;
    const double f = p.shuttleFidelity(80.0, 1.0);
    EXPECT_NEAR(f, std::exp(-80.0 / 600e6 - 0.001 * 1.0), 1e-15);
}

TEST(Params, PerfectShuttleDropsHeatTerm)
{
    PhysicalParams p;
    p.perfectShuttle = true;
    EXPECT_NEAR(p.shuttleFidelity(80.0, 1.0),
                std::exp(-80.0 / 600e6), 1e-15);
}

TEST(Params, MoveTime)
{
    const PhysicalParams p;
    EXPECT_DOUBLE_EQ(p.moveTimeUs(200.0), 100.0);
}

class EmitterTest : public ::testing::Test
{
  protected:
    EmitterTest()
        : device_(EmlConfig{}, 8),
          placement_(8, device_.numZones())
    {
        // All 8 ions in the first storage zone of module 0.
        for (int q = 0; q < 8; ++q)
            placement_.insert(q, device_.zonesOfModule(0)[0],
                              ChainEnd::Back);
        schedule_.initialChains = Schedule::snapshotChains(placement_);
    }

    EmlDevice device_;
    Placement placement_;
    Schedule schedule_;
    PhysicalParams params_;
};

TEST_F(EmitterTest, EdgeIonNeedsNoSwaps)
{
    ShuttleEmitter emitter(device_.zoneInfos(), params_, placement_,
                           schedule_);
    const int target = device_.zonesOfModule(0)[1];
    const int swaps = emitter.relocate(0, target); // front ion
    EXPECT_EQ(swaps, 0);
    ASSERT_EQ(schedule_.ops.size(), 3u);
    EXPECT_EQ(schedule_.ops[0].kind, OpKind::Split);
    EXPECT_EQ(schedule_.ops[1].kind, OpKind::Move);
    EXPECT_EQ(schedule_.ops[2].kind, OpKind::Merge);
    EXPECT_EQ(schedule_.shuttleCount, 1);
    EXPECT_EQ(placement_.zoneOf(0), target);
}

TEST_F(EmitterTest, InteriorIonEmitsIonSwaps)
{
    ShuttleEmitter emitter(device_.zoneInfos(), params_, placement_,
                           schedule_);
    const int target = device_.zonesOfModule(0)[1];
    // Qubit 2 sits at index 2 of an 8-chain: 2 swaps to the front.
    const int swaps = emitter.relocate(2, target);
    EXPECT_EQ(swaps, 2);
    EXPECT_EQ(schedule_.ionSwapCount, 2);
    EXPECT_EQ(schedule_.ops[0].kind, OpKind::IonSwap);
    EXPECT_EQ(placement_.zoneOf(2), target);
    // The vacated chain kept the remaining ions in relative order.
    EXPECT_EQ(placement_.chainIndex(0), 0);
    EXPECT_EQ(placement_.chainIndex(1), 1);
    EXPECT_EQ(placement_.chainIndex(3), 2);
}

TEST_F(EmitterTest, MoveDurationFromPitch)
{
    ShuttleEmitter emitter(device_.zoneInfos(), params_, placement_,
                           schedule_);
    const int target = device_.zonesOfModule(0)[2]; // two traps away
    emitter.relocate(0, target);
    double move_time = -1.0;
    for (const auto &op : schedule_.ops) {
        if (op.kind == OpKind::Move)
            move_time = op.durationUs;
    }
    EXPECT_DOUBLE_EQ(move_time,
                     2 * device_.config().zonePitchUm /
                         params_.moveSpeedUmPerUs);
}

TEST_F(EmitterTest, RelocationTimePreviewMatchesEmission)
{
    ShuttleEmitter emitter(device_.zoneInfos(), params_, placement_,
                           schedule_);
    const int target = device_.zonesOfModule(0)[1];
    const double preview = emitter.relocationTimeUs(3, target);
    const std::size_t before = schedule_.ops.size();
    emitter.relocate(3, target);
    double emitted = 0.0;
    for (std::size_t i = before; i < schedule_.ops.size(); ++i)
        emitted += schedule_.ops[i].durationUs;
    EXPECT_DOUBLE_EQ(preview, emitted);
}

TEST_F(EmitterTest, RelocateIntoFullZonePanics)
{
    ShuttleEmitter emitter(device_.zoneInfos(), params_, placement_,
                           schedule_);
    // Fill zone 1 to capacity with fresh placements.
    Placement &p = placement_;
    const int z1 = device_.zonesOfModule(0)[1];
    // Move ions until zone 1 is full (capacity 16, only 8 ions total --
    // so force a smaller device instead).
    EmlConfig small;
    small.trapCapacity = 2;
    small.maxQubitsPerModule = 6;
    const EmlDevice dev(small, 6);
    Placement sp(6, dev.numZones());
    const auto zones = dev.zonesOfModule(0);
    sp.insert(0, zones[0], ChainEnd::Back);
    sp.insert(1, zones[0], ChainEnd::Back);
    sp.insert(2, zones[1], ChainEnd::Back);
    sp.insert(3, zones[1], ChainEnd::Back);
    sp.insert(4, zones[2], ChainEnd::Back);
    sp.insert(5, zones[3], ChainEnd::Back);
    Schedule sched;
    sched.initialChains = Schedule::snapshotChains(sp);
    ShuttleEmitter small_emitter(dev.zoneInfos(), params_, sp, sched);
    EXPECT_THROW(small_emitter.relocate(0, zones[1]), std::logic_error);
    (void)p;
    (void)z1;
    (void)emitter;
}

TEST(Evaluator, CountsAndSerialTime)
{
    const EmlDevice device(EmlConfig{}, 4);
    Placement placement(4, device.numZones());
    const int op_zone = device.zonesOfKind(0, ZoneKind::Operation)[0];
    for (int q = 0; q < 4; ++q)
        placement.insert(q, op_zone, ChainEnd::Back);

    Schedule schedule;
    schedule.initialChains = Schedule::snapshotChains(placement);
    ScheduledOp g1;
    g1.kind = OpKind::Gate1Q;
    g1.q0 = 0;
    g1.zoneFrom = g1.zoneTo = op_zone;
    g1.durationUs = 5.0;
    schedule.push(g1);
    ScheduledOp g2;
    g2.kind = OpKind::Gate2Q;
    g2.q0 = 0;
    g2.q1 = 1;
    g2.zoneFrom = g2.zoneTo = op_zone;
    g2.durationUs = 40.0;
    schedule.push(g2);

    const PhysicalParams params;
    const Metrics metrics =
        Evaluator(params).evaluate(schedule, device.zoneInfos());
    EXPECT_EQ(metrics.gate1qCount, 1);
    EXPECT_EQ(metrics.gate2qCount, 1);
    EXPECT_EQ(metrics.shuttleCount, 0);
    EXPECT_DOUBLE_EQ(metrics.executionTimeUs, 45.0);
    // 4 ions in trap: 2q fidelity 1 - 16/25600.
    const double expected =
        0.9999 * (1.0 - 16.0 / 25600.0) *
        std::exp(-45.0 / 600e6);
    EXPECT_NEAR(metrics.fidelity(), expected, 1e-9);
}

TEST(Evaluator, HeatDegradesLaterGates)
{
    const EmlDevice device(EmlConfig{}, 4);
    const int op_zone = device.zonesOfKind(0, ZoneKind::Operation)[0];
    const int storage = device.zonesOfKind(0, ZoneKind::Storage)[0];

    auto build = [&](bool with_shuttle) {
        Placement placement(4, device.numZones());
        placement.insert(0, op_zone, ChainEnd::Back);
        placement.insert(1, op_zone, ChainEnd::Back);
        placement.insert(2, storage, ChainEnd::Back);
        placement.insert(3, storage, ChainEnd::Back);
        Schedule schedule;
        schedule.initialChains = Schedule::snapshotChains(placement);
        PhysicalParams params;
        ShuttleEmitter emitter(device.zoneInfos(), params, placement,
                               schedule);
        if (with_shuttle)
            emitter.relocate(2, op_zone);
        ScheduledOp g2;
        g2.kind = OpKind::Gate2Q;
        g2.q0 = 0;
        g2.q1 = 1;
        g2.zoneFrom = g2.zoneTo = op_zone;
        g2.durationUs = 40.0;
        schedule.push(g2);
        return Evaluator(params).evaluate(schedule, device.zoneInfos());
    };

    const Metrics quiet = build(false);
    const Metrics heated = build(true);
    // The heated trap also holds one more ion (N^2 term) and suffered
    // shuttle heat -- strictly lower fidelity.
    EXPECT_LT(heated.lnFidelity, quiet.lnFidelity);
    EXPECT_EQ(heated.shuttleCount, 1);
}

TEST(Evaluator, PerfectShuttleRemovesHeatPenalty)
{
    const EmlDevice device(EmlConfig{}, 4);
    const int op_zone = device.zonesOfKind(0, ZoneKind::Operation)[0];
    const int storage = device.zonesOfKind(0, ZoneKind::Storage)[0];

    auto run = [&](bool perfect) {
        Placement placement(4, device.numZones());
        placement.insert(0, op_zone, ChainEnd::Back);
        placement.insert(1, op_zone, ChainEnd::Back);
        placement.insert(2, storage, ChainEnd::Back);
        placement.insert(3, storage, ChainEnd::Back);
        Schedule schedule;
        schedule.initialChains = Schedule::snapshotChains(placement);
        PhysicalParams params;
        params.perfectShuttle = perfect;
        ShuttleEmitter emitter(device.zoneInfos(), params, placement,
                               schedule);
        emitter.relocate(2, op_zone);
        ScheduledOp g2;
        g2.kind = OpKind::Gate2Q;
        g2.q0 = 0;
        g2.q1 = 1;
        g2.zoneFrom = g2.zoneTo = op_zone;
        g2.durationUs = 40.0;
        schedule.push(g2);
        return Evaluator(params).evaluate(schedule, device.zoneInfos());
    };

    EXPECT_GT(run(true).lnFidelity, run(false).lnFidelity);
}

TEST(Evaluator, FiberGateFixedFidelity)
{
    const EmlDevice device(EmlConfig{}, 64); // 2 modules
    const int optical0 = device.zonesOfKind(0, ZoneKind::Optical)[0];
    const int optical1 = device.zonesOfKind(1, ZoneKind::Optical)[0];
    Placement placement(64, device.numZones());
    placement.insert(0, optical0, ChainEnd::Back);
    placement.insert(1, optical1, ChainEnd::Back);
    for (int q = 2; q < 64; ++q)
        placement.insert(q, device.zonesOfModule(q % 2)[0],
                         ChainEnd::Back);
    Schedule schedule;
    schedule.initialChains = Schedule::snapshotChains(placement);
    ScheduledOp fiber;
    fiber.kind = OpKind::FiberGate;
    fiber.q0 = 0;
    fiber.q1 = 1;
    fiber.zoneFrom = optical0;
    fiber.zoneTo = optical1;
    fiber.durationUs = 200.0;
    schedule.push(fiber);

    const PhysicalParams params;
    const Metrics metrics =
        Evaluator(params).evaluate(schedule, device.zoneInfos());
    EXPECT_EQ(metrics.fiberGateCount, 1);
    EXPECT_NEAR(metrics.fidelity(),
                0.99 * std::exp(-200.0 / 600e6), 1e-9);
}

TEST(Evaluator, Log10AxisMatchesLn)
{
    Metrics metrics;
    metrics.lnFidelity = std::log(1e-50);
    EXPECT_NEAR(metrics.log10Fidelity(), -50.0, 1e-9);
    EXPECT_NEAR(metrics.fidelity(), 1e-50, 1e-62);
}

} // namespace
} // namespace mussti
