/**
 * @file
 * Tests for the device models: zone taxonomy, EML module construction,
 * fiber links, geometry, and the grid substrate.
 */
#include <gtest/gtest.h>

#include "arch/eml_device.h"
#include "arch/grid_device.h"
#include "arch/zone.h"

namespace mussti {
namespace {

TEST(Zone, LevelsMatchHierarchy)
{
    EXPECT_EQ(zoneLevel(ZoneKind::Storage), 0);
    EXPECT_EQ(zoneLevel(ZoneKind::Operation), 1);
    EXPECT_EQ(zoneLevel(ZoneKind::Optical), 2);
}

TEST(Zone, GateCapability)
{
    EXPECT_FALSE(isGateCapable(ZoneKind::Storage));
    EXPECT_TRUE(isGateCapable(ZoneKind::Operation));
    EXPECT_TRUE(isGateCapable(ZoneKind::Optical));
}

TEST(EmlDevice, ModuleCountFromQubits)
{
    const EmlConfig config;
    EXPECT_EQ(EmlDevice(config, 32).numModules(), 1);
    EXPECT_EQ(EmlDevice(config, 33).numModules(), 2);
    EXPECT_EQ(EmlDevice(config, 128).numModules(), 4);
    EXPECT_EQ(EmlDevice(config, 299).numModules(), 10);
}

TEST(EmlDevice, ForcedModuleCount)
{
    EmlConfig config;
    config.forcedNumModules = 3;
    EXPECT_EQ(EmlDevice(config, 16).numModules(), 3);
}

TEST(EmlDevice, DefaultModuleZoneMix)
{
    const EmlDevice device(EmlConfig{}, 64);
    for (int m = 0; m < device.numModules(); ++m) {
        EXPECT_EQ(device.zonesOfKind(m, ZoneKind::Storage).size(), 2u);
        EXPECT_EQ(device.zonesOfKind(m, ZoneKind::Operation).size(), 1u);
        EXPECT_EQ(device.zonesOfKind(m, ZoneKind::Optical).size(), 1u);
        EXPECT_EQ(device.gateZonesOfModule(m).size(), 2u);
    }
}

TEST(EmlDevice, TwoOpticalZoneVariant)
{
    EmlConfig config;
    config.numOpticalZones = 2;
    const EmlDevice device(config, 64);
    EXPECT_EQ(device.zonesOfKind(0, ZoneKind::Optical).size(), 2u);
    EXPECT_EQ(device.zonesOfModule(0).size(), 5u);
}

TEST(EmlDevice, ZonesBelongToTheirModule)
{
    const EmlDevice device(EmlConfig{}, 96);
    for (int m = 0; m < device.numModules(); ++m) {
        for (int z : device.zonesOfModule(m))
            EXPECT_EQ(device.zone(z).module, m);
    }
}

TEST(EmlDevice, FiberLinksOnlyCrossModuleOptical)
{
    const EmlDevice device(EmlConfig{}, 64);
    const int optical0 = device.zonesOfKind(0, ZoneKind::Optical)[0];
    const int optical1 = device.zonesOfKind(1, ZoneKind::Optical)[0];
    const int storage0 = device.zonesOfKind(0, ZoneKind::Storage)[0];
    EXPECT_TRUE(device.fiberLinked(optical0, optical1));
    EXPECT_FALSE(device.fiberLinked(optical0, optical0));
    EXPECT_FALSE(device.fiberLinked(optical0, storage0));
}

TEST(EmlDevice, IntraModuleDistances)
{
    const EmlDevice device(EmlConfig{}, 32);
    const auto zones = device.zonesOfModule(0);
    // Adjacent traps are one pitch apart.
    EXPECT_DOUBLE_EQ(device.distanceUm(zones[0], zones[1]),
                     device.config().zonePitchUm);
    EXPECT_DOUBLE_EQ(device.distanceUm(zones[0], zones[3]),
                     3 * device.config().zonePitchUm);
}

TEST(EmlDevice, CrossModuleDistancePanics)
{
    const EmlDevice device(EmlConfig{}, 64);
    const int z0 = device.zonesOfModule(0)[0];
    const int z1 = device.zonesOfModule(1)[0];
    EXPECT_THROW(device.distanceUm(z0, z1), std::logic_error);
}

TEST(EmlDevice, ModuleQubitRanges)
{
    const EmlDevice device(EmlConfig{}, 70);
    EXPECT_EQ(device.moduleQubitRange(0), (std::pair{0, 32}));
    EXPECT_EQ(device.moduleQubitRange(1), (std::pair{32, 64}));
    EXPECT_EQ(device.moduleQubitRange(2), (std::pair{64, 70}));
}

TEST(EmlDevice, SlotAccounting)
{
    const EmlDevice device(EmlConfig{}, 32);
    EXPECT_EQ(device.moduleSlotCount(0), 4 * 16);
}

TEST(EmlDevice, RejectsUndersizedModules)
{
    EmlConfig config;
    config.trapCapacity = 2;  // 4 zones * 2 = 8 slots < 32 qubits
    EXPECT_THROW(EmlDevice(config, 32), std::runtime_error);
}

TEST(EmlDevice, RejectsCapacityOne)
{
    EmlConfig config;
    config.trapCapacity = 1;
    EXPECT_THROW(EmlDevice(config, 2), std::runtime_error);
}

TEST(GridDevice, NeighborsInterior)
{
    const GridDevice grid(GridConfig{3, 3, 4});
    const auto n = grid.neighbors(4); // center of 3x3
    EXPECT_EQ(n.size(), 4u);
}

TEST(GridDevice, NeighborsCorner)
{
    const GridDevice grid(GridConfig{3, 3, 4});
    EXPECT_EQ(grid.neighbors(0).size(), 2u);
}

TEST(GridDevice, HopDistanceIsManhattan)
{
    const GridDevice grid(GridConfig{4, 5, 4});
    EXPECT_EQ(grid.hopDistance(0, grid.trapAt(4, 3)), 7);
    EXPECT_EQ(grid.hopDistance(3, 3), 0);
}

TEST(GridDevice, PathEndsAtTargetAndHasHopLength)
{
    const GridDevice grid(GridConfig{4, 4, 4});
    const int from = grid.trapAt(0, 0);
    const int to = grid.trapAt(2, 3);
    const auto path = grid.path(from, to);
    ASSERT_FALSE(path.empty());
    EXPECT_EQ(path.back(), to);
    EXPECT_EQ(static_cast<int>(path.size()), grid.hopDistance(from, to));
    // Consecutive hops are adjacent.
    int prev = from;
    for (int t : path) {
        EXPECT_EQ(grid.hopDistance(prev, t), 1);
        prev = t;
    }
}

TEST(GridDevice, AllTrapsGateCapable)
{
    const GridDevice grid(GridConfig{2, 2, 12});
    for (const auto &info : grid.zoneInfos())
        EXPECT_TRUE(info.gateCapable());
}

TEST(GridDevice, SlotCount)
{
    EXPECT_EQ(GridDevice(GridConfig{2, 3, 8}).slotCount(), 48);
}

} // namespace
} // namespace mussti
