/**
 * @file
 * Unit tests for the common library: RNG determinism, log-domain
 * fidelity, string helpers, CSV/table output, and summary statistics.
 */
#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "common/csv.h"
#include "common/error.h"
#include "common/log_fidelity.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/string_util.h"

namespace mussti {
namespace {

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformStaysInBounds)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.uniform(10), 10u);
}

TEST(Rng, IntInCoversRangeInclusive)
{
    Rng rng(7);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const int v = rng.intIn(3, 5);
        EXPECT_GE(v, 3);
        EXPECT_LE(v, 5);
        saw_lo |= v == 3;
        saw_hi |= v == 5;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, RealInUnitInterval)
{
    Rng rng(3);
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.real();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng rng(11);
    std::vector<int> items{0, 1, 2, 3, 4, 5, 6, 7};
    auto copy = items;
    rng.shuffle(copy);
    std::sort(copy.begin(), copy.end());
    EXPECT_EQ(copy, items);
}

TEST(LogFidelity, MatchesDirectProduct)
{
    LogFidelity f;
    double direct = 1.0;
    for (double v : {0.99, 0.9, 0.999, 0.5}) {
        f.multiply(v);
        direct *= v;
    }
    EXPECT_NEAR(f.value(), direct, 1e-12);
}

TEST(LogFidelity, SurvivesUnderflowScale)
{
    // 1e5 factors of 0.99 underflow a double product (~1e-437) but the
    // ln-sum stays exact.
    LogFidelity f;
    for (int i = 0; i < 100000; ++i)
        f.multiply(0.99);
    EXPECT_DOUBLE_EQ(f.value(), 0.0); // like the paper's Python zeros
    EXPECT_NEAR(f.log10(), 100000 * std::log10(0.99), 1e-6);
}

TEST(LogFidelity, ZeroFactorIsTerminal)
{
    LogFidelity f;
    f.multiply(0.5);
    f.multiply(0.0);
    EXPECT_TRUE(f.isZero());
    EXPECT_EQ(f.value(), 0.0);
    EXPECT_TRUE(std::isinf(f.ln()));
}

TEST(LogFidelity, CombineAccumulators)
{
    LogFidelity a, b;
    a.multiply(0.9);
    b.multiply(0.8);
    a.multiply(b);
    EXPECT_NEAR(a.value(), 0.72, 1e-12);
}

TEST(LogFidelity, MultiplyLnDirect)
{
    LogFidelity f;
    f.multiplyLn(std::log(0.25));
    EXPECT_NEAR(f.value(), 0.25, 1e-12);
}

TEST(StringUtil, Trim)
{
    EXPECT_EQ(trim("  hi  "), "hi");
    EXPECT_EQ(trim("hi"), "hi");
    EXPECT_EQ(trim("   "), "");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("\ta b\n"), "a b");
}

TEST(StringUtil, Split)
{
    const auto fields = split("a,b,,c", ',');
    ASSERT_EQ(fields.size(), 4u);
    EXPECT_EQ(fields[0], "a");
    EXPECT_EQ(fields[2], "");
    EXPECT_EQ(fields[3], "c");
}

TEST(StringUtil, SplitSingleField)
{
    const auto fields = split("abc", ',');
    ASSERT_EQ(fields.size(), 1u);
    EXPECT_EQ(fields[0], "abc");
}

TEST(StringUtil, StartsWith)
{
    EXPECT_TRUE(startsWith("OPENQASM 2.0", "OPENQASM"));
    EXPECT_FALSE(startsWith("qreg", "qregs"));
}

TEST(StringUtil, ParseIntArgHardensCliTokens)
{
    // ISSUE-5 regression: positional CLI ints used to go through bare
    // atoi, so `capacity_explorer bv banana` silently ran with 0
    // qubits. parseIntArg fatals, naming the token and its role.
    EXPECT_EQ(parseIntArg("96", "qubit count"), 96);
    EXPECT_EQ(parseIntArg("  96 ", "qubit count"), 96);
    EXPECT_EQ(parseIntArg("-4", "offset"), -4);

    EXPECT_THROW(parseIntArg("banana", "qubit count"),
                 std::runtime_error);
    EXPECT_THROW(parseIntArg("12x", "qubit count"), std::runtime_error);
    EXPECT_THROW(parseIntArg("", "qubit count"), std::runtime_error);
    try {
        (void)parseIntArg("banana", "qubit count");
        FAIL();
    } catch (const std::runtime_error &err) {
        const std::string what = err.what();
        EXPECT_NE(what.find("banana"), std::string::npos) << what;
        EXPECT_NE(what.find("qubit count"), std::string::npos) << what;
    }
}

TEST(StringUtil, ToLower)
{
    EXPECT_EQ(toLower("GHZ_n32"), "ghz_n32");
}

TEST(StringUtil, FormatCompactIntegers)
{
    EXPECT_EQ(formatCompact(7.0), "7");
    EXPECT_EQ(formatCompact(11160.0), "11160");
}

TEST(CsvWriter, QuotesOnDemand)
{
    std::ostringstream out;
    CsvWriter writer(out);
    writer.writeRow({"plain", "with,comma", "with\"quote"});
    EXPECT_EQ(out.str(), "plain,\"with,comma\",\"with\"\"quote\"\n");
}

TEST(TextTable, AlignsColumns)
{
    TextTable table;
    table.setHeader({"app", "shuttles"});
    table.addRow({"GHZ_n32", "2"});
    table.addRow({"Adder_n32", "7"});
    std::ostringstream out;
    table.print(out);
    const std::string text = out.str();
    EXPECT_NE(text.find("app"), std::string::npos);
    EXPECT_NE(text.find("Adder_n32"), std::string::npos);
    EXPECT_EQ(table.rowCount(), 2u);
}

TEST(Stats, MeanAndGeomean)
{
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
    EXPECT_NEAR(geomean({1.0, 100.0}), 10.0, 1e-9);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(Stats, Reduction)
{
    // ours halves the baseline everywhere -> 50%.
    EXPECT_NEAR(averageReductionPercent({10, 20}, {5, 10}), 50.0, 1e-9);
    // zero baseline entries are skipped.
    EXPECT_NEAR(averageReductionPercent({0, 20}, {5, 10}), 50.0, 1e-9);
}

TEST(Stats, MinMaxStddev)
{
    EXPECT_DOUBLE_EQ(minOf({3.0, 1.0, 2.0}), 1.0);
    EXPECT_DOUBLE_EQ(maxOf({3.0, 1.0, 2.0}), 3.0);
    EXPECT_NEAR(stddev({2.0, 4.0}), 1.0, 1e-12);
}

TEST(Logging, FatalThrowsRuntimeError)
{
    EXPECT_THROW(fatal("user error"), std::runtime_error);
}

TEST(Logging, PanicThrowsLogicError)
{
    EXPECT_THROW(panic("bug"), std::logic_error);
}

TEST(Logging, AssertMacroFiresOnFalse)
{
    EXPECT_THROW(MUSSTI_ASSERT(1 == 2, "broken " << 42),
                 std::logic_error);
}

TEST(Logging, RequireMacroFiresOnFalse)
{
    EXPECT_THROW(MUSSTI_REQUIRE(false, "bad input"), std::runtime_error);
}

TEST(Logging, ScopedFatalSilenceStillThrows)
{
    // The guard only mutes the stderr echo; the exception (and its
    // diagnostic payload) must be unchanged.
    const ScopedFatalSilence quiet;
    try {
        fatal("quiet user error");
        FAIL();
    } catch (const std::runtime_error &err) {
        EXPECT_NE(std::string(err.what()).find("quiet user error"),
                  std::string::npos);
    }
}

TEST(Logging, ScopedFatalSilenceDefaultKeepsWarns)
{
    testing::internal::CaptureStderr();
    {
        const ScopedFatalSilence quiet;
        warn("still audible");
    }
    const std::string err = testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find("still audible"), std::string::npos);
}

TEST(Logging, ScopedFatalSilenceCanMuteWarns)
{
    testing::internal::CaptureStderr();
    {
        const ScopedFatalSilence quiet(/*silence_warns=*/true);
        warn("muted warning");
        inform("never muted");
    }
    warn("audible again");
    const std::string err = testing::internal::GetCapturedStderr();
    EXPECT_EQ(err.find("muted warning"), std::string::npos) << err;
    EXPECT_NE(err.find("never muted"), std::string::npos) << err;
    EXPECT_NE(err.find("audible again"), std::string::npos) << err;
}

TEST(ErrorTaxonomy, FatalCarriesInvalidInputCategory)
{
    const ScopedFatalSilence quiet;
    try {
        fatal("bad knob");
        FAIL();
    } catch (const MusstiError &err) {
        EXPECT_EQ(err.category(), ErrorCategory::InvalidInput);
        EXPECT_EQ(err.code(), "input.fatal");
        EXPECT_EQ(err.message(), "bad knob");
    }
}

TEST(ErrorTaxonomy, RequireMacroMapsToInvalidInput)
{
    const ScopedFatalSilence quiet;
    try {
        MUSSTI_REQUIRE(false, "rejected value " << 7);
        FAIL();
    } catch (const MusstiError &err) {
        EXPECT_EQ(err.category(), ErrorCategory::InvalidInput);
        EXPECT_EQ(err.code(), "input.require");
        EXPECT_NE(err.message().find("rejected value 7"),
                  std::string::npos);
    }
}

TEST(ErrorTaxonomy, PanicAndAssertMapToInternal)
{
    try {
        panic("bug");
        FAIL();
    } catch (const MusstiError &err) {
        EXPECT_EQ(err.category(), ErrorCategory::Internal);
        EXPECT_EQ(err.code(), "internal.panic");
    }
    try {
        MUSSTI_ASSERT(1 == 2, "broken invariant");
        FAIL();
    } catch (const MusstiError &err) {
        EXPECT_EQ(err.category(), ErrorCategory::Internal);
        EXPECT_EQ(err.code(), "internal.assert");
        EXPECT_NE(err.message().find("broken invariant"),
                  std::string::npos);
    }
}

TEST(ErrorTaxonomy, LegacyHandlersStillCatchByStandardType)
{
    // The dual-inheritance contract: every fatal is a runtime_error,
    // every panic a logic_error, and BOTH are MusstiError.
    const ScopedFatalSilence quiet;
    EXPECT_THROW(fatalCoded("input.fatal", "x"), std::runtime_error);
    EXPECT_THROW(panicCoded("internal.panic", "x"), std::logic_error);
    EXPECT_THROW(fatal("x"), MusstiError);
    EXPECT_THROW(panic("x"), MusstiError);
}

TEST(ErrorTaxonomy, RaiseErrorRoundTripsEveryCategory)
{
    const ScopedFatalSilence quiet;
    const ErrorCategory cats[] = {
        ErrorCategory::InvalidInput, ErrorCategory::ResourceExhausted,
        ErrorCategory::Timeout, ErrorCategory::Cancelled,
        ErrorCategory::Transient,
    };
    for (const ErrorCategory cat : cats) {
        try {
            raiseError(cat, "test.code", "round trip");
            FAIL() << errorCategoryName(cat);
        } catch (const MusstiError &err) {
            EXPECT_EQ(err.category(), cat);
            EXPECT_EQ(err.code(), "test.code");
            EXPECT_EQ(err.message(), "round trip");
        }
    }
}

TEST(ErrorTaxonomy, QuietCategoriesDoNotEchoToStderr)
{
    // Timeout/Cancelled/Transient are expected control-flow outcomes;
    // they must not spam the console even without a silence guard.
    testing::internal::CaptureStderr();
    EXPECT_THROW(raiseError(ErrorCategory::Timeout,
                            "job.deadline-exceeded", "t"),
                 std::runtime_error);
    EXPECT_THROW(raiseError(ErrorCategory::Cancelled, "job.cancelled",
                            "c"),
                 std::runtime_error);
    EXPECT_THROW(raiseError(ErrorCategory::Transient, "fault.injected",
                            "f"),
                 std::runtime_error);
    EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
}

TEST(ErrorTaxonomy, PayloadRaisesAsMatchingConcreteType)
{
    const MusstiError timeout(ErrorCategory::Timeout,
                              "job.deadline-exceeded", "too slow");
    EXPECT_THROW(timeout.raise(), std::runtime_error);
    const MusstiError bug(ErrorCategory::Internal, "internal.x", "bug");
    EXPECT_THROW(bug.raise(), std::logic_error);
    try {
        timeout.raise();
    } catch (const MusstiError &err) {
        EXPECT_EQ(err.category(), ErrorCategory::Timeout);
        EXPECT_EQ(err.code(), "job.deadline-exceeded");
    }
}

TEST(ErrorTaxonomy, DescribeCurrentExceptionClassifies)
{
    // Structured errors pass through losslessly.
    try {
        raiseError(ErrorCategory::Transient, "fault.injected", "x");
    } catch (...) {
        const MusstiError err = describeCurrentException();
        EXPECT_EQ(err.category(), ErrorCategory::Transient);
        EXPECT_EQ(err.code(), "fault.injected");
    }
    // Foreign exceptions are wrapped as Internal.
    try {
        throw std::runtime_error("foreign");
    } catch (...) {
        const MusstiError err = describeCurrentException();
        EXPECT_EQ(err.category(), ErrorCategory::Internal);
        EXPECT_EQ(err.code(), "internal.uncaught");
        EXPECT_NE(err.message().find("foreign"), std::string::npos);
    }
}

TEST(StringUtil, ParseEnvThreadCountCoversEveryShape)
{
    const ScopedFatalSilence quiet(true); // the reject paths warn

    // Absent or empty knob: auto (hardware concurrency).
    EXPECT_EQ(parseEnvThreadCount("T", nullptr), 0);
    EXPECT_EQ(parseEnvThreadCount("T", ""), 0);

    // Well-formed positives pass through.
    EXPECT_EQ(parseEnvThreadCount("T", "1"), 1);
    EXPECT_EQ(parseEnvThreadCount("T", "8"), 8);

    // Garbage and non-positive values fall back to auto instead of
    // atoi's silent 0-threads.
    EXPECT_EQ(parseEnvThreadCount("T", "banana"), 0);
    EXPECT_EQ(parseEnvThreadCount("T", "3x"), 0);
    EXPECT_EQ(parseEnvThreadCount("T", "0"), 0);
    EXPECT_EQ(parseEnvThreadCount("T", "-4"), 0);

    // Oversized requests clamp to the ceiling (default and custom).
    EXPECT_EQ(parseEnvThreadCount("T", "100000"), 512);
    EXPECT_EQ(parseEnvThreadCount("T", "9", 4), 4);
}

TEST(ErrorTaxonomy, CategoryNamesAreStable)
{
    EXPECT_STREQ(errorCategoryName(ErrorCategory::InvalidInput),
                 "InvalidInput");
    EXPECT_STREQ(errorCategoryName(ErrorCategory::ResourceExhausted),
                 "ResourceExhausted");
    EXPECT_STREQ(errorCategoryName(ErrorCategory::Timeout), "Timeout");
    EXPECT_STREQ(errorCategoryName(ErrorCategory::Cancelled),
                 "Cancelled");
    EXPECT_STREQ(errorCategoryName(ErrorCategory::Transient),
                 "Transient");
    EXPECT_STREQ(errorCategoryName(ErrorCategory::Internal), "Internal");
}

} // namespace
} // namespace mussti
