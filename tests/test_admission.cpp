/**
 * @file
 * Tests for the deficit-round-robin admission layer (core/admission.h):
 * pinned dispatch interleavings, the per-client in-flight budget,
 * shutdown/drain semantics, and the determinism contract — a compile's
 * result is identical through admission, at any interleaving, to a
 * direct service batch.
 *
 * The interleaving tests pin the DRR schedule by parking a blocker
 * compile on a single-worker service: while the worker chews on it,
 * admission dispatch decisions (which are synchronous with submit) land
 * in a deterministic order, and queued-side effects release in service
 * FIFO order afterwards.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <string>
#include <vector>

#include "baselines/backend_factory.h"
#include "core/admission.h"
#include "core/compile_service.h"
#include "core/pipeline.h"
#include "workloads/workloads.h"

namespace mussti {
namespace {

std::shared_ptr<const ICompilerBackend>
backend()
{
    static const std::shared_ptr<const ICompilerBackend> shared =
        makeMusstiBackend();
    return shared;
}

CompileRequest
requestFor(const Circuit &circuit, std::uint64_t seed)
{
    CompileRequest request{backend(), circuit, seed, {}, {}};
    return request;
}

/** A compile big enough to park a worker for a while (>= 100 ms). */
Circuit
blockerCircuit()
{
    return makeBenchmark("qv", 64);
}

TEST(Admission, DispatchLogPinsTheDrrInterleaving)
{
    CompileServiceConfig service_config;
    service_config.numThreads = 1;
    service_config.cacheCapacity = 0;
    CompileService service(service_config);

    FairAdmissionConfig policy;
    policy.quantum = 1u << 20; // credit never the limiter here
    policy.maxInFlightPerClient = 2;
    FairAdmission admission(service, policy);

    // Park the single worker so every admission decision below is made
    // while nothing completes.
    std::future<CompileResult> blocker =
        service.submit(backend(), blockerCircuit());

    const Circuit small = makeBenchmark("ghz", 8);
    std::atomic<int> done{0};
    const auto sink = [&done](CompileOutcome outcome) {
        EXPECT_TRUE(outcome.ok());
        ++done;
    };
    // A floods four; B two; C one. Budget 2 caps A and B at two
    // dispatches; A's remaining two release one per A-completion.
    admission.submit("A", requestFor(small, 1), sink);
    admission.submit("A", requestFor(small, 2), sink);
    admission.submit("A", requestFor(small, 3), sink);
    admission.submit("A", requestFor(small, 4), sink);
    admission.submit("B", requestFor(small, 5), sink);
    admission.submit("B", requestFor(small, 6), sink);
    admission.submit("C", requestFor(small, 7), sink);

    blocker.get();
    admission.drain();
    EXPECT_EQ(done.load(), 7);

    const std::vector<std::string> expected = {"A", "A", "B", "B", "C",
                                              "A", "A"};
    EXPECT_EQ(admission.dispatchLog(), expected);

    const AdmissionStats stats = admission.stats();
    EXPECT_EQ(stats.submitted, 7u);
    EXPECT_EQ(stats.dispatched, 7u);
    EXPECT_EQ(stats.completed, 7u);
    EXPECT_EQ(stats.queuedJobs, 0u);
    EXPECT_EQ(stats.inFlightJobs, 0u);
}

TEST(Admission, InFlightBudgetHoldsABurstBack)
{
    CompileServiceConfig service_config;
    service_config.numThreads = 1;
    service_config.cacheCapacity = 0;
    CompileService service(service_config);

    FairAdmissionConfig policy;
    policy.maxInFlightPerClient = 2;
    FairAdmission admission(service, policy);

    std::future<CompileResult> blocker =
        service.submit(backend(), blockerCircuit());

    const Circuit small = makeBenchmark("ghz", 8);
    std::atomic<int> done{0};
    for (int i = 0; i < 5; ++i)
        admission.submit("burst", requestFor(small, 10 + i),
                         [&done](CompileOutcome outcome) {
                             EXPECT_TRUE(outcome.ok());
                             ++done;
                         });

    // While the blocker parks the worker, only the budget's worth may
    // have been dispatched.
    const AdmissionStats mid = admission.stats();
    EXPECT_EQ(mid.inFlightJobs, 2u);
    EXPECT_EQ(mid.queuedJobs, 3u);
    EXPECT_EQ(mid.activeClients, 1u);

    blocker.get();
    admission.drain();
    EXPECT_EQ(done.load(), 5);
    EXPECT_EQ(admission.stats().dispatched, 5u);
}

TEST(Admission, QuantumMakesCostCountNotJobCount)
{
    // One-gate jobs vs the quantum: with quantum 1, a client banks one
    // credit per rotation and a ghz-8 job costs its gate count, so a
    // competing client's cheap jobs interleave ahead — the DRR serves
    // WORK, not job slots. We only pin the aggregate here (the exact
    // interleave is pinned by DispatchLogPinsTheDrrInterleaving).
    CompileServiceConfig service_config;
    service_config.numThreads = 2;
    service_config.cacheCapacity = 0;
    CompileService service(service_config);

    FairAdmissionConfig policy;
    policy.quantum = 1;
    policy.maxInFlightPerClient = 0;
    FairAdmission admission(service, policy);

    const Circuit small = makeBenchmark("ghz", 8);
    std::atomic<int> done{0};
    for (int i = 0; i < 3; ++i)
        admission.submit("x", requestFor(small, 20 + i),
                         [&done](CompileOutcome outcome) {
                             EXPECT_TRUE(outcome.ok());
                             ++done;
                         });
    admission.drain();
    EXPECT_EQ(done.load(), 3);
}

TEST(Admission, ShutdownCancelsQueuedAndDeliversEverything)
{
    CompileServiceConfig service_config;
    service_config.numThreads = 1;
    service_config.cacheCapacity = 0;
    CompileService service(service_config);

    FairAdmissionConfig policy;
    policy.maxInFlightPerClient = 1;
    FairAdmission admission(service, policy);

    std::future<CompileResult> blocker =
        service.submit(backend(), blockerCircuit());

    const Circuit small = makeBenchmark("ghz", 8);
    std::atomic<int> ok{0};
    std::atomic<int> cancelled{0};
    for (int i = 0; i < 4; ++i)
        admission.submit("c", requestFor(small, 30 + i),
                         [&ok, &cancelled](CompileOutcome outcome) {
                             if (outcome.ok()) {
                                 ++ok;
                             } else {
                                 EXPECT_EQ(outcome.errorInfo().code(),
                                           "job.cancelled");
                                 ++cancelled;
                             }
                         });

    admission.shutdown(); // one dispatched, three still queued
    blocker.get();

    EXPECT_EQ(ok.load() + cancelled.load(), 4);
    EXPECT_EQ(cancelled.load(), 3);
    EXPECT_EQ(admission.stats().cancelledQueued, 3u);

    // Post-shutdown submissions resolve Cancelled inline.
    bool rejected = false;
    admission.submit("c", requestFor(small, 99),
                     [&rejected](CompileOutcome outcome) {
                         EXPECT_FALSE(outcome.ok());
                         EXPECT_EQ(outcome.errorInfo().category(),
                                   ErrorCategory::Cancelled);
                         rejected = true;
                     });
    EXPECT_TRUE(rejected);
}

TEST(Admission, DrainOnIdleReturnsImmediately)
{
    CompileService service{CompileServiceConfig{}};
    FairAdmission admission(service);
    admission.drain();
    EXPECT_EQ(admission.stats().submitted, 0u);
}

TEST(Admission, ResultsAreBitIdenticalToADirectBatch)
{
    // The layering contract: admission reorders dispatch, never what a
    // job compiles to. Two clients interleaving through a multi-thread
    // pool must fingerprint identically to a direct compileAll.
    const std::vector<std::string> families = {"ghz", "bv", "qft",
                                               "adder"};
    std::vector<CompileRequest> direct;
    for (std::size_t i = 0; i < families.size(); ++i)
        direct.push_back(requestFor(
            makeBenchmark(families[i], 16),
            CompileService::deriveJobSeed(7, i)));

    std::vector<std::uint64_t> want;
    {
        CompileService service{CompileServiceConfig{}};
        for (CompileResult &result :
             service.compileAll(std::move(direct)))
            want.push_back(resultFingerprint(result));
    }

    CompileServiceConfig service_config;
    service_config.numThreads = 4;
    CompileService service(service_config);
    FairAdmissionConfig policy;
    policy.maxInFlightPerClient = 1; // force queueing + re-pumps
    FairAdmission admission(service, policy);

    std::vector<std::uint64_t> got(families.size());
    std::atomic<int> done{0};
    for (std::size_t i = 0; i < families.size(); ++i) {
        admission.submit(i % 2 == 0 ? "even" : "odd",
                         requestFor(makeBenchmark(families[i], 16),
                                    CompileService::deriveJobSeed(7, i)),
                         [&got, &done, i](CompileOutcome outcome) {
                             ASSERT_TRUE(outcome.ok());
                             got[i] = resultFingerprint(*outcome.result);
                             ++done;
                         });
    }
    admission.drain();
    ASSERT_EQ(done.load(), static_cast<int>(families.size()));
    EXPECT_EQ(want, got);
}

} // namespace
} // namespace mussti
