/**
 * @file
 * Tests for the baseline grid compilers: validity of their schedules,
 * their characteristic behaviours (MQT-like gates only in the
 * processing trap; Dai look-ahead <= Murali greedy on structured
 * workloads), and hop-counted shuttle accounting.
 */
#include <gtest/gtest.h>

#include "baselines/dai.h"
#include "baselines/mqt_like.h"
#include "baselines/murali.h"
#include "sim/validator.h"
#include "workloads/workloads.h"

namespace mussti {
namespace {

GridConfig
smallGrid()
{
    return GridConfig{2, 2, 12};
}

void
expectValid(const GridDevice &device, const CompileResult &result)
{
    const auto report = ScheduleValidator(device.zoneInfos())
                            .validate(result.schedule, result.lowered);
    EXPECT_TRUE(report) << report.firstError;
}

TEST(Murali, CompilesSmallSuiteValidly)
{
    const PhysicalParams params;
    for (const auto &spec : smallScaleSuite()) {
        MuraliCompiler compiler(smallGrid(), params);
        const Circuit qc = makeBenchmark(spec.family, spec.numQubits);
        const auto result = compiler.compile(qc);
        expectValid(compiler.device(), result);
    }
}

TEST(Murali, ColocatedCircuitNeedsNoShuttles)
{
    Circuit qc(8, "local");
    qc.cx(0, 1);
    qc.cx(2, 3);
    const PhysicalParams params;
    MuraliCompiler compiler(GridConfig{2, 2, 8}, params);
    const auto result = compiler.compile(qc);
    EXPECT_EQ(result.metrics.shuttleCount, 0);
}

TEST(Murali, CrossTrapGateCostsShuttles)
{
    Circuit qc(24, "cross");
    qc.cx(0, 23); // trap 0 and trap 2 under row-major fill, cap 12
    const PhysicalParams params;
    MuraliCompiler compiler(smallGrid(), params);
    const auto result = compiler.compile(qc);
    EXPECT_GE(result.metrics.shuttleCount, 1);
    expectValid(compiler.device(), result);
}

TEST(Dai, CompilesSmallSuiteValidly)
{
    const PhysicalParams params;
    for (const auto &spec : smallScaleSuite()) {
        DaiCompiler compiler(smallGrid(), params);
        const Circuit qc = makeBenchmark(spec.family, spec.numQubits);
        const auto result = compiler.compile(qc);
        expectValid(compiler.device(), result);
    }
}

TEST(Dai, LookAheadBeatsGreedyOnCommunicationHeavyWorkloads)
{
    const PhysicalParams params;
    // Average across the communication-heavy families; the look-ahead
    // baseline must not lose to greedy overall (the paper's Table 2
    // relationship between [13] and [55]).
    double murali_total = 0.0, dai_total = 0.0;
    for (const char *family : {"sqrt", "qft", "adder"}) {
        const Circuit qc = makeBenchmark(family, 30);
        MuraliCompiler murali(smallGrid(), params);
        DaiCompiler dai(smallGrid(), params);
        murali_total += murali.compile(qc).metrics.shuttleCount;
        dai_total += dai.compile(qc).metrics.shuttleCount;
    }
    EXPECT_LE(dai_total, murali_total * 1.05);
}

TEST(MqtLike, GatesOnlyInProcessingTrap)
{
    const PhysicalParams params;
    MqtLikeCompiler compiler(smallGrid(), params);
    const Circuit qc = makeBenchmark("adder", 32);
    const auto result = compiler.compile(qc);
    for (const auto &op : result.schedule.ops) {
        if (op.kind == OpKind::Gate2Q) {
            EXPECT_EQ(op.zoneFrom, compiler.processingTrap());
        }
    }
    expectValid(compiler.device(), result);
}

TEST(MqtLike, ShuttleHeaviestBaseline)
{
    // Table 2: [70] shuttles dominate [55] and [13] on every app.
    const PhysicalParams params;
    for (const char *family : {"adder", "qft"}) {
        const Circuit qc = makeBenchmark(family, 32);
        MuraliCompiler murali(smallGrid(), params);
        MqtLikeCompiler mqt(smallGrid(), params);
        EXPECT_GT(mqt.compile(qc).metrics.shuttleCount,
                  murali.compile(qc).metrics.shuttleCount)
            << family;
    }
}

TEST(GridBase, RejectsOversizedCircuit)
{
    const PhysicalParams params;
    MuraliCompiler compiler(GridConfig{2, 2, 4}, params); // 16 slots
    EXPECT_THROW(compiler.compile(makeGhz(32)), std::runtime_error);
}

TEST(GridBase, HopAccountingExceedsMergeCountOnBigGrids)
{
    // On a 4x5 grid, far-apart interactions take multi-hop shuttles, so
    // booked shuttles exceed the number of Merge ops.
    const PhysicalParams params;
    MuraliCompiler compiler(GridConfig{4, 5, 16}, params);
    const Circuit qc = makeRandomCircuit(256, 200, 3);
    const auto result = compiler.compile(qc);
    int merges = 0;
    for (const auto &op : result.schedule.ops)
        merges += op.kind == OpKind::Merge;
    EXPECT_GT(result.metrics.shuttleCount, merges);
    expectValid(compiler.device(), result);
}

/** Exposes the protected spill machinery for dead-lock regression. */
class SpillProbe : public MuraliCompiler
{
  public:
    using MuraliCompiler::MuraliCompiler;
    using MuraliCompiler::Pass;
    using MuraliCompiler::initialPlacement;
    using MuraliCompiler::relocate;
};

TEST(GridBase, SpillDeadLockPanicsCleanly)
{
    // Regression for the all-candidates-excluded case: the target trap
    // is full and every resident is protected, so LruTracker::victim
    // returns -1. The relocation must fail with a clean diagnostic
    // panic, not index a placement with -1.
    const PhysicalParams params;
    const GridConfig grid{2, 1, 2}; // two traps, capacity 2
    SpillProbe probe(grid, params);

    Circuit qc(4, "spill");
    qc.cx(0, 1);
    const Circuit lowered = qc.withSwapsDecomposed();
    SpillProbe::Pass pass(probe.device(), params, lowered,
                          probe.initialPlacement(4));
    // Row-major fill: trap 0 holds {0, 1}, trap 1 holds {2, 3}.
    // Moving qubit 2 into trap 0 while protecting both residents leaves
    // no spill victim.
    EXPECT_THROW(probe.relocate(pass, 2, 0, {0, 1}), std::logic_error);
}

TEST(GridBase, SpillWithFreeVictimSucceeds)
{
    // Same setup with an unprotected resident and a free slot for it:
    // the spill resolves. Trap 0 holds {0, 1}, trap 1 holds only {2}.
    const PhysicalParams params;
    const GridConfig grid{2, 1, 2};
    SpillProbe probe(grid, params);

    Circuit qc(3, "spill-ok");
    qc.cx(0, 1);
    const Circuit lowered = qc.withSwapsDecomposed();
    SpillProbe::Pass pass(probe.device(), params, lowered,
                          probe.initialPlacement(3));
    probe.relocate(pass, 2, 0, {0});
    EXPECT_EQ(pass.placement.zoneOf(2), 0);
    EXPECT_NE(pass.placement.zoneOf(1), 0); // qubit 1 was spilled out
}

TEST(GridBase, MediumGridSuiteValidates)
{
    const PhysicalParams params;
    const GridConfig grid{3, 4, 16};
    for (const auto &spec : mediumScaleSuite()) {
        const Circuit qc = makeBenchmark(spec.family, spec.numQubits);
        MuraliCompiler murali(grid, params);
        const auto result = murali.compile(qc);
        expectValid(murali.device(), result);
        DaiCompiler dai(grid, params);
        const auto dai_result = dai.compile(qc);
        expectValid(dai.device(), dai_result);
    }
}

} // namespace
} // namespace mussti
