/**
 * @file
 * Direct tests for the Schedule container API and op descriptions —
 * pieces the compiler suites exercise only indirectly.
 */
#include <gtest/gtest.h>

#include "arch/eml_device.h"
#include "sim/schedule.h"

namespace mussti {
namespace {

TEST(ScheduleApi, PushMaintainsCounters)
{
    Schedule schedule;
    ScheduledOp merge;
    merge.kind = OpKind::Merge;
    merge.q0 = 0;
    merge.zoneTo = 0;
    schedule.push(merge);
    schedule.push(merge);
    ScheduledOp swap;
    swap.kind = OpKind::IonSwap;
    swap.q0 = 0;
    swap.q1 = 1;
    schedule.push(swap);
    EXPECT_EQ(schedule.shuttleCount, 2);
    EXPECT_EQ(schedule.ionSwapCount, 1);
}

TEST(ScheduleApi, ExtraShuttleBooking)
{
    Schedule schedule;
    schedule.addExtraShuttles(3);
    EXPECT_EQ(schedule.shuttleCount, 3);
}

TEST(ScheduleApi, SerialDurationSumsOps)
{
    Schedule schedule;
    ScheduledOp op;
    op.kind = OpKind::Gate1Q;
    op.q0 = 0;
    op.durationUs = 5.0;
    schedule.push(op);
    op.durationUs = 40.0;
    schedule.push(op);
    EXPECT_DOUBLE_EQ(schedule.serialDurationUs(), 45.0);
}

TEST(ScheduleApi, SnapshotRoundTripsPlacement)
{
    const EmlDevice device(EmlConfig{}, 8);
    Placement placement(8, device.numZones());
    const auto zones = device.zonesOfModule(0);
    placement.insert(0, zones[1], ChainEnd::Back);
    placement.insert(1, zones[1], ChainEnd::Front);
    for (int q = 2; q < 8; ++q)
        placement.insert(q, zones[0], ChainEnd::Back);

    Schedule schedule;
    schedule.initialChains = Schedule::snapshotChains(placement);
    const Placement rebuilt = schedule.initialPlacement(8);

    for (int q = 0; q < 8; ++q) {
        EXPECT_EQ(rebuilt.zoneOf(q), placement.zoneOf(q)) << q;
        EXPECT_EQ(rebuilt.chainIndex(q), placement.chainIndex(q)) << q;
    }
}

TEST(ScheduleApi, OpDescribeMentionsEverything)
{
    ScheduledOp op;
    op.kind = OpKind::FiberGate;
    op.q0 = 3;
    op.q1 = 40;
    op.zoneFrom = 2;
    op.zoneTo = 6;
    op.durationUs = 200.0;
    op.inserted = true;
    const std::string text = op.describe();
    EXPECT_NE(text.find("fiber-gate"), std::string::npos);
    EXPECT_NE(text.find("q3"), std::string::npos);
    EXPECT_NE(text.find("q40"), std::string::npos);
    EXPECT_NE(text.find("z2"), std::string::npos);
    EXPECT_NE(text.find("z6"), std::string::npos);
    EXPECT_NE(text.find("[inserted]"), std::string::npos);
}

TEST(ScheduleApi, ShuttlePrimitiveClassification)
{
    ScheduledOp op;
    for (OpKind kind : {OpKind::Split, OpKind::Move, OpKind::Merge,
                        OpKind::IonSwap}) {
        op.kind = kind;
        EXPECT_TRUE(op.isShuttlePrimitive()) << opKindName(kind);
        EXPECT_FALSE(op.isGate());
    }
    for (OpKind kind : {OpKind::Gate1Q, OpKind::Gate2Q,
                        OpKind::FiberGate}) {
        op.kind = kind;
        EXPECT_TRUE(op.isGate()) << opKindName(kind);
    }
}

TEST(ScheduleApi, OpKindNamesDistinct)
{
    std::set<std::string> names;
    for (OpKind kind : {OpKind::Split, OpKind::Move, OpKind::Merge,
                        OpKind::IonSwap, OpKind::Gate1Q, OpKind::Gate2Q,
                        OpKind::FiberGate}) {
        names.insert(opKindName(kind));
    }
    EXPECT_EQ(names.size(), 7u);
}

} // namespace
} // namespace mussti
