/**
 * @file
 * Tests for the placement/chain model: insertion edges, extraction
 * costs, adjacent swaps, and logical exchange.
 */
#include <gtest/gtest.h>

#include "arch/placement.h"

namespace mussti {
namespace {

TEST(Placement, StartsUnplaced)
{
    const Placement p(4, 2);
    for (int q = 0; q < 4; ++q)
        EXPECT_EQ(p.zoneOf(q), -1);
    EXPECT_FALSE(p.allPlaced());
}

TEST(Placement, InsertFrontAndBack)
{
    Placement p(3, 1);
    p.insert(0, 0, ChainEnd::Back);
    p.insert(1, 0, ChainEnd::Back);
    p.insert(2, 0, ChainEnd::Front);
    const auto &chain = p.chain(0);
    ASSERT_EQ(chain.size(), 3u);
    EXPECT_EQ(chain[0], 2);
    EXPECT_EQ(chain[1], 0);
    EXPECT_EQ(chain[2], 1);
    EXPECT_TRUE(p.allPlaced());
}

TEST(Placement, DoubleInsertPanics)
{
    Placement p(2, 2);
    p.insert(0, 0, ChainEnd::Back);
    EXPECT_THROW(p.insert(0, 1, ChainEnd::Back), std::logic_error);
}

TEST(Placement, ChainIndexAndExtraction)
{
    Placement p(5, 1);
    for (int q = 0; q < 5; ++q)
        p.insert(q, 0, ChainEnd::Back);
    EXPECT_EQ(p.chainIndex(0), 0);
    EXPECT_EQ(p.chainIndex(4), 4);
    EXPECT_EQ(p.extractionSwaps(0), 0); // front edge
    EXPECT_EQ(p.extractionSwaps(4), 0); // back edge
    EXPECT_EQ(p.extractionSwaps(2), 2); // center
    EXPECT_EQ(p.extractionSwaps(1), 1);
}

TEST(Placement, CheaperEndPicksNearerEdge)
{
    Placement p(5, 1);
    for (int q = 0; q < 5; ++q)
        p.insert(q, 0, ChainEnd::Back);
    EXPECT_EQ(p.cheaperEnd(1), ChainEnd::Front);
    EXPECT_EQ(p.cheaperEnd(3), ChainEnd::Back);
}

TEST(Placement, SwapTowardMovesOneStep)
{
    Placement p(3, 1);
    for (int q = 0; q < 3; ++q)
        p.insert(q, 0, ChainEnd::Back);
    p.swapToward(1, ChainEnd::Front);
    EXPECT_EQ(p.chainIndex(1), 0);
    EXPECT_EQ(p.chainIndex(0), 1);
}

TEST(Placement, SwapTowardAtEdgePanics)
{
    Placement p(2, 1);
    p.insert(0, 0, ChainEnd::Back);
    p.insert(1, 0, ChainEnd::Back);
    EXPECT_THROW(p.swapToward(0, ChainEnd::Front), std::logic_error);
}

TEST(Placement, RemoveAtEdgeBothEnds)
{
    Placement p(3, 1);
    for (int q = 0; q < 3; ++q)
        p.insert(q, 0, ChainEnd::Back);
    p.removeAtEdge(0);
    p.removeAtEdge(2);
    EXPECT_EQ(p.sizeOf(0), 1);
    EXPECT_EQ(p.zoneOf(0), -1);
    EXPECT_EQ(p.zoneOf(2), -1);
}

TEST(Placement, RemoveInteriorAtEdgePanics)
{
    Placement p(3, 1);
    for (int q = 0; q < 3; ++q)
        p.insert(q, 0, ChainEnd::Back);
    EXPECT_THROW(p.removeAtEdge(1), std::logic_error);
}

TEST(Placement, RemoveAnywhere)
{
    Placement p(3, 1);
    for (int q = 0; q < 3; ++q)
        p.insert(q, 0, ChainEnd::Back);
    p.removeAnywhere(1);
    EXPECT_EQ(p.sizeOf(0), 2);
    EXPECT_EQ(p.chainIndex(2), 1);
}

TEST(Placement, ExchangeSwapsSlotsAcrossZones)
{
    Placement p(4, 2);
    p.insert(0, 0, ChainEnd::Back);
    p.insert(1, 0, ChainEnd::Back);
    p.insert(2, 1, ChainEnd::Back);
    p.insert(3, 1, ChainEnd::Back);
    p.exchange(1, 2);
    EXPECT_EQ(p.zoneOf(1), 1);
    EXPECT_EQ(p.zoneOf(2), 0);
    EXPECT_EQ(p.chainIndex(2), 1); // takes 1's old slot
    EXPECT_EQ(p.chainIndex(1), 0); // takes 2's old slot
}

TEST(Placement, ExchangeWithinSameZone)
{
    Placement p(2, 1);
    p.insert(0, 0, ChainEnd::Back);
    p.insert(1, 0, ChainEnd::Back);
    p.exchange(0, 1);
    EXPECT_EQ(p.chainIndex(0), 1);
    EXPECT_EQ(p.chainIndex(1), 0);
}

TEST(Placement, SizeTracking)
{
    Placement p(4, 2);
    EXPECT_EQ(p.sizeOf(0), 0);
    p.insert(0, 0, ChainEnd::Back);
    p.insert(1, 1, ChainEnd::Back);
    EXPECT_EQ(p.sizeOf(0), 1);
    EXPECT_EQ(p.sizeOf(1), 1);
}

} // namespace
} // namespace mussti
