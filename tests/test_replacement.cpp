/**
 * @file
 * Tests for the replacement-policy ablation: every policy must produce
 * valid schedules; the anticipatory-LRU default must not lose to the
 * naive policies in aggregate (the design-choice ablation DESIGN.md
 * calls out).
 */
#include <gtest/gtest.h>

#include "core/compiler.h"
#include "sim/validator.h"
#include "workloads/workloads.h"

namespace mussti {
namespace {

const ReplacementPolicy kPolicies[] = {
    ReplacementPolicy::AnticipatoryLru,
    ReplacementPolicy::Lru,
    ReplacementPolicy::Fifo,
    ReplacementPolicy::Random,
};

TEST(Replacement, PolicyNames)
{
    EXPECT_STREQ(replacementPolicyName(ReplacementPolicy::AnticipatoryLru),
                 "anticipatory-lru");
    EXPECT_STREQ(replacementPolicyName(ReplacementPolicy::Lru), "lru");
    EXPECT_STREQ(replacementPolicyName(ReplacementPolicy::Fifo), "fifo");
    EXPECT_STREQ(replacementPolicyName(ReplacementPolicy::Random),
                 "random");
}

class ReplacementValidityTest
    : public ::testing::TestWithParam<ReplacementPolicy>
{};

TEST_P(ReplacementValidityTest, SchedulesValidateAcrossWorkloads)
{
    for (const char *family : {"ghz", "qft", "sqrt", "ran"}) {
        const Circuit qc = makeBenchmark(family, 48);
        MusstiConfig config;
        config.replacement = GetParam();
        const auto result = MusstiCompiler(config).compile(qc);
        const EmlDevice device(config.device, qc.numQubits());
        const auto report = ScheduleValidator(device.zoneInfos())
                                .validate(result.schedule, result.lowered);
        ASSERT_TRUE(report) << family << " under "
                            << replacementPolicyName(GetParam()) << ": "
                            << report.firstError;
    }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, ReplacementValidityTest,
                         ::testing::ValuesIn(kPolicies));

TEST(Replacement, RandomPolicyIsSeedDeterministic)
{
    const Circuit qc = makeQft(32);
    MusstiConfig config;
    config.replacement = ReplacementPolicy::Random;
    config.seed = 99;
    const auto a = MusstiCompiler(config).compile(qc);
    const auto b = MusstiCompiler(config).compile(qc);
    EXPECT_EQ(a.metrics.shuttleCount, b.metrics.shuttleCount);
    EXPECT_EQ(a.schedule.ops.size(), b.schedule.ops.size());
}

TEST(Replacement, DifferentSeedsMayDiffer)
{
    const Circuit qc = makeQft(48);
    MusstiConfig config;
    config.replacement = ReplacementPolicy::Random;
    config.seed = 1;
    const auto a = MusstiCompiler(config).compile(qc);
    config.seed = 2;
    const auto b = MusstiCompiler(config).compile(qc);
    // Not strictly required to differ, but the op streams almost surely
    // do; compare gate counts remain identical either way.
    EXPECT_EQ(a.metrics.gate2qCount + a.metrics.fiberGateCount -
                  3 * a.metrics.insertedSwapGates,
              b.metrics.gate2qCount + b.metrics.fiberGateCount -
                  3 * b.metrics.insertedSwapGates);
}

TEST(Replacement, AnticipatoryBeatsNaivePoliciesInAggregate)
{
    // The headline design choice: anticipated-usage + LRU eviction must
    // reduce shuttles versus FIFO and Random across a mixed suite.
    double anticipatory = 0.0, fifo = 0.0, random_total = 0.0;
    for (const char *family : {"ghz", "qft", "sqrt"}) {
        const Circuit qc = makeBenchmark(family, 64);
        MusstiConfig config;
        config.replacement = ReplacementPolicy::AnticipatoryLru;
        anticipatory += MusstiCompiler(config).compile(qc)
                            .metrics.shuttleCount;
        config.replacement = ReplacementPolicy::Fifo;
        fifo += MusstiCompiler(config).compile(qc).metrics.shuttleCount;
        config.replacement = ReplacementPolicy::Random;
        random_total += MusstiCompiler(config).compile(qc)
                            .metrics.shuttleCount;
    }
    EXPECT_LE(anticipatory, fifo);
    EXPECT_LE(anticipatory, random_total);
}

TEST(Replacement, PureLruStillValidButNotBetterThanAnticipatory)
{
    const Circuit qc = makeSqrt(117);
    MusstiConfig config;
    config.replacement = ReplacementPolicy::AnticipatoryLru;
    const auto smart = MusstiCompiler(config).compile(qc);
    config.replacement = ReplacementPolicy::Lru;
    const auto plain = MusstiCompiler(config).compile(qc);
    EXPECT_LE(smart.metrics.shuttleCount,
              plain.metrics.shuttleCount + 8);
}

} // namespace
} // namespace mussti
