/**
 * @file
 * Tests for the batch CompileService: N-thread batches bit-identical to
 * serial execution, deterministic per-job seeding independent of thread
 * count, result-cache behaviour, and error propagation through futures.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <vector>

#include "baselines/backend_factory.h"
#include "common/error.h"
#include "common/logging.h"
#include "core/compile_service.h"
#include "core/compiler.h"
#include "workloads/workloads.h"

namespace mussti {
namespace {

void
expectIdentical(const CompileResult &a, const CompileResult &b)
{
    EXPECT_EQ(a.schedule.ops.size(), b.schedule.ops.size());
    EXPECT_EQ(a.metrics.shuttleCount, b.metrics.shuttleCount);
    EXPECT_EQ(a.metrics.ionSwapCount, b.metrics.ionSwapCount);
    EXPECT_EQ(a.metrics.gate1qCount, b.metrics.gate1qCount);
    EXPECT_EQ(a.metrics.gate2qCount, b.metrics.gate2qCount);
    EXPECT_EQ(a.metrics.fiberGateCount, b.metrics.fiberGateCount);
    EXPECT_EQ(a.metrics.executionTimeUs, b.metrics.executionTimeUs);
    EXPECT_EQ(a.metrics.lnFidelity, b.metrics.lnFidelity);
    EXPECT_EQ(a.swapInsertions, b.swapInsertions);
    EXPECT_EQ(a.evictions, b.evictions);
    EXPECT_EQ(a.finalChains, b.finalChains);
}

/** A mixed batch over every stock backend: >= 8 jobs. */
std::vector<CompileRequest>
mixedBatch()
{
    const GridConfig grid{2, 2, 16};
    std::vector<CompileRequest> requests;
    for (const char *family : {"adder", "ghz", "qft"}) {
        requests.push_back(
            {makeMusstiBackend(), makeBenchmark(family, 30), {}});
    }
    for (const auto &name : gridBackendNames()) {
        requests.push_back({makeGridBackend(name, grid),
                            makeBenchmark("adder", 32), {}});
    }
    requests.push_back(
        {makeMusstiBackend(), makeBenchmark("bv", 64), {}});
    requests.push_back(
        {makeMusstiBackend(), makeBenchmark("sqrt", 45), {}});
    return requests;
}

TEST(CompileService, FourThreadBatchIdenticalToSerial)
{
    auto requests = mixedBatch();
    ASSERT_GE(requests.size(), 8u);

    // Serial reference: direct backend calls, no service involved.
    std::vector<CompileResult> serial;
    for (const auto &request : requests)
        serial.push_back(request.backend->compile(request.circuit));

    CompileServiceConfig config;
    config.numThreads = 4;
    CompileService service(config);
    EXPECT_EQ(service.numThreads(), 4);

    const auto parallel = service.compileAll(std::move(requests));
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        expectIdentical(parallel[i], serial[i]);
}

TEST(CompileService, SeededBatchIndependentOfThreadCount)
{
    // Stochastic backend: the replacement policy consumes the RNG, so
    // wrong seed plumbing would change the metrics.
    MusstiConfig config;
    config.replacement = ReplacementPolicy::Random;
    const auto backend = makeMusstiBackend(config);
    const std::uint64_t base = 42;

    auto makeRequests = [&] {
        std::vector<CompileRequest> requests;
        for (std::size_t i = 0; i < 8; ++i) {
            requests.push_back({backend, makeBenchmark("ran", 40),
                                CompileService::deriveJobSeed(base, i)});
        }
        return requests;
    };

    CompileServiceConfig one_thread;
    one_thread.numThreads = 1;
    one_thread.cacheCapacity = 0; // force real recompilation
    CompileServiceConfig four_threads;
    four_threads.numThreads = 4;
    four_threads.cacheCapacity = 0;

    CompileService serial(one_thread);
    CompileService parallel(four_threads);
    const auto a = serial.compileAll(makeRequests());
    const auto b = parallel.compileAll(makeRequests());
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        expectIdentical(a[i], b[i]);
    EXPECT_EQ(serial.jobsExecuted(), 8u);
    EXPECT_EQ(parallel.jobsExecuted(), 8u);
}

TEST(CompileService, CompileSweepDerivesSeedsByJobIndex)
{
    // The tuner's fleet-sweep primitive: requests without an explicit
    // seed get deriveJobSeed(base, index), so a sweep replays exactly
    // at any thread count — and honours explicit seeds untouched.
    MusstiConfig config;
    config.replacement = ReplacementPolicy::Random; // seed-sensitive
    const auto backend = makeMusstiBackend(config);
    const Circuit qc = makeBenchmark("ran", 40);
    const std::uint64_t base = 99;

    auto makeRequests = [&] {
        std::vector<CompileRequest> requests;
        for (int i = 0; i < 6; ++i)
            requests.push_back({backend, qc, {}});
        return requests;
    };

    CompileServiceConfig one_thread;
    one_thread.numThreads = 1;
    one_thread.cacheCapacity = 0;
    CompileServiceConfig four_threads;
    four_threads.numThreads = 4;
    four_threads.cacheCapacity = 0;

    CompileService serial(one_thread);
    CompileService parallel(four_threads);
    const auto a = serial.compileSweep(makeRequests(), base);
    const auto b = parallel.compileSweep(makeRequests(), base);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        expectIdentical(a[i], b[i]);

    // The derived seed IS deriveJobSeed(base, i): job i of the sweep
    // matches an explicit submission under that seed.
    const auto explicit_job =
        serial.submit(backend, qc,
                      CompileService::deriveJobSeed(base, 2)).get();
    expectIdentical(a[2], explicit_job);
}

TEST(CompileService, DeriveJobSeedDeterministicAndDistinct)
{
    EXPECT_EQ(CompileService::deriveJobSeed(7, 3),
              CompileService::deriveJobSeed(7, 3));
    EXPECT_NE(CompileService::deriveJobSeed(7, 3),
              CompileService::deriveJobSeed(7, 4));
    EXPECT_NE(CompileService::deriveJobSeed(7, 3),
              CompileService::deriveJobSeed(8, 3));
}

TEST(CompileService, CacheServesRepeatedJobs)
{
    CompileServiceConfig config;
    config.numThreads = 2;
    CompileService service(config);
    const auto backend = makeMusstiBackend();
    const Circuit qc = makeBenchmark("adder", 30);

    const auto first = service.submit(backend, qc).get();
    EXPECT_EQ(service.jobsExecuted(), 1u);
    EXPECT_EQ(service.cacheHits(), 0u);

    const auto second = service.submit(backend, qc).get();
    EXPECT_EQ(service.jobsExecuted(), 1u);
    EXPECT_EQ(service.cacheHits(), 1u);
    expectIdentical(first, second);
}

TEST(CompileService, CacheKeysDistinguishConfigAndCircuit)
{
    CompileServiceConfig service_config;
    service_config.numThreads = 1;
    CompileService service(service_config);

    MusstiConfig trivial;
    trivial.mapping = MappingKind::Trivial;
    const Circuit qc = makeBenchmark("ghz", 30);

    (void)service.submit(makeMusstiBackend(), qc).get();
    (void)service.submit(makeMusstiBackend(trivial), qc).get();
    (void)service.submit(makeMusstiBackend(),
                         makeBenchmark("ghz", 31)).get();
    EXPECT_EQ(service.jobsExecuted(), 3u);
    EXPECT_EQ(service.cacheHits(), 0u);
}

TEST(CompileService, SeedIsPartOfTheCacheKey)
{
    CompileServiceConfig service_config;
    service_config.numThreads = 1;
    CompileService service(service_config);
    MusstiConfig config;
    config.replacement = ReplacementPolicy::Random;
    const auto backend = makeMusstiBackend(config);
    const Circuit qc = makeBenchmark("ran", 36);

    (void)service.submit(backend, qc, 1).get();
    (void)service.submit(backend, qc, 2).get();
    (void)service.submit(backend, qc, 1).get();
    EXPECT_EQ(service.jobsExecuted(), 2u);
    EXPECT_EQ(service.cacheHits(), 1u);
}

TEST(CompileService, CompileErrorsPropagateThroughFutures)
{
    CompileServiceConfig service_config;
    service_config.numThreads = 2;
    CompileService service(service_config);
    // 32 qubits cannot fit a 2x2 grid with capacity 4 (16 slots).
    const auto backend =
        makeGridBackend("murali", GridConfig{2, 2, 4});
    auto future = service.submit(backend, makeGhz(32));
    EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(CompileService, ErrorCategoryRoundTripsThroughFutures)
{
    const ScopedFatalSilence quiet;
    CompileServiceConfig service_config;
    service_config.numThreads = 1;
    CompileService service(service_config);
    const auto backend = makeGridBackend("murali", GridConfig{2, 2, 4});

    // Legacy future: the thrown exception carries the full taxonomy.
    auto future = service.submit(backend, makeGhz(32));
    try {
        (void)future.get();
        FAIL() << "expected a structured failure";
    } catch (const MusstiError &err) {
        EXPECT_EQ(err.category(), ErrorCategory::InvalidInput);
        EXPECT_EQ(err.code(), "input.require");
    }

    // Tolerant future: the same taxonomy, as a value.
    CompileOutcome outcome =
        service.submitOutcome({backend, makeGhz(32), {}, {}, {}}).get();
    ASSERT_FALSE(outcome.ok());
    EXPECT_EQ(outcome.errorInfo().category(),
              ErrorCategory::InvalidInput);
    EXPECT_EQ(outcome.errorInfo().code(), "input.require");
    EXPECT_THROW((void)outcome.value(), std::runtime_error);
    EXPECT_EQ(service.cacheStats().jobsFailed, 2u);
}

TEST(CompileService, OutcomeBatchKeepsSurvivorsInSubmissionOrder)
{
    // One bad circuit in a batch costs one outcome, not the batch —
    // and the pattern plus the survivors are identical at 1 and 4
    // threads.
    const ScopedFatalSilence quiet;
    const auto good = makeMusstiBackend();
    const auto bad = makeGridBackend("murali", GridConfig{2, 2, 4});

    auto makeRequests = [&] {
        std::vector<CompileRequest> requests;
        requests.push_back({good, makeBenchmark("ghz", 30), {}, {}, {}});
        requests.push_back({bad, makeGhz(32), {}, {}, {}});
        requests.push_back({good, makeBenchmark("adder", 30), {}, {}, {}});
        requests.push_back({bad, makeGhz(40), {}, {}, {}});
        requests.push_back({good, makeBenchmark("qft", 24), {}, {}, {}});
        requests.push_back({good, makeBenchmark("bv", 40), {}, {}, {}});
        return requests;
    };

    CompileServiceConfig one_thread;
    one_thread.numThreads = 1;
    one_thread.cacheCapacity = 0;
    CompileServiceConfig four_threads;
    four_threads.numThreads = 4;
    four_threads.cacheCapacity = 0;

    CompileService serial(one_thread);
    CompileService parallel(four_threads);
    const auto a = serial.compileAllOutcomes(makeRequests());
    const auto b = parallel.compileAllOutcomes(makeRequests());
    ASSERT_EQ(a.size(), 6u);
    ASSERT_EQ(b.size(), a.size());

    const bool expect_ok[] = {true, false, true, false, true, true};
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].ok(), expect_ok[i]) << "job " << i;
        EXPECT_EQ(b[i].ok(), expect_ok[i]) << "job " << i;
        if (expect_ok[i]) {
            expectIdentical(a[i].value(), b[i].value());
        } else {
            EXPECT_EQ(a[i].errorInfo().category(),
                      ErrorCategory::InvalidInput);
            EXPECT_EQ(a[i].errorInfo().code(), b[i].errorInfo().code());
        }
    }
    EXPECT_EQ(serial.cacheStats().jobsFailed, 2u);
    EXPECT_EQ(parallel.cacheStats().jobsFailed, 2u);

    // The sweep variant seeds survivors deterministically too.
    const auto swept =
        serial.compileSweepOutcomes(makeRequests(), /*base_seed=*/7);
    ASSERT_EQ(swept.size(), 6u);
    for (std::size_t i = 0; i < swept.size(); ++i)
        EXPECT_EQ(swept[i].ok(), expect_ok[i]) << "job " << i;
}

TEST(CompileService, SubmitAfterShutdownResolvesCancelled)
{
    CompileServiceConfig service_config;
    service_config.numThreads = 1;
    CompileService service(service_config);
    const auto backend = makeMusstiBackend();
    service.shutdown();

    // Tolerant path: a ready Cancelled outcome, no race with teardown.
    auto outcome_future =
        service.submitOutcome({backend, makeGhz(8), {}, {}, {}});
    ASSERT_EQ(outcome_future.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    CompileOutcome outcome = outcome_future.get();
    ASSERT_FALSE(outcome.ok());
    EXPECT_EQ(outcome.errorInfo().category(), ErrorCategory::Cancelled);
    EXPECT_EQ(outcome.errorInfo().code(), "job.cancelled");

    // Legacy path: the future throws the same structured error.
    auto future = service.submit(backend, makeGhz(8));
    ASSERT_EQ(future.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    try {
        (void)future.get();
        FAIL() << "expected Cancelled";
    } catch (const MusstiError &err) {
        EXPECT_EQ(err.category(), ErrorCategory::Cancelled);
    }
    EXPECT_EQ(service.cacheStats().jobsCancelled, 2u);
}

TEST(CompileService, PreSetCancelTokenResolvesCancelled)
{
    CompileServiceConfig service_config;
    service_config.numThreads = 1;
    CompileService service(service_config);
    const auto token = std::make_shared<std::atomic<bool>>(true);

    CompileOutcome outcome = service.submitOutcome(
        {makeMusstiBackend(), makeGhz(16), {}, {}, token}).get();
    ASSERT_FALSE(outcome.ok());
    EXPECT_EQ(outcome.errorInfo().category(), ErrorCategory::Cancelled);
    EXPECT_EQ(outcome.errorInfo().code(), "job.cancelled");
    EXPECT_EQ(service.jobsExecuted(), 0u); // never started compiling
    EXPECT_EQ(service.cacheStats().jobsCancelled, 1u);
}

TEST(CompileService, ExpiredDeadlineResolvesTimeout)
{
    CompileServiceConfig service_config;
    service_config.numThreads = 1;
    CompileService service(service_config);

    CompileRequest request{makeMusstiBackend(), makeGhz(16), {}, {}, {}};
    request.deadline = std::chrono::steady_clock::now() -
                       std::chrono::milliseconds(1);
    CompileOutcome outcome =
        service.submitOutcome(std::move(request)).get();
    ASSERT_FALSE(outcome.ok());
    EXPECT_EQ(outcome.errorInfo().category(), ErrorCategory::Timeout);
    EXPECT_EQ(outcome.errorInfo().code(), "job.deadline-exceeded");
    EXPECT_EQ(outcome.attempts, 1); // Timeout never retries
    EXPECT_EQ(service.jobsExecuted(), 0u);
    EXPECT_EQ(service.cacheStats().jobsTimedOut, 1u);
}

TEST(CompileService, JobControlUnwindsTheCompilePipeline)
{
    // Drive the backend's controlled entry point directly: the
    // checkpoint chain (entry, pass boundaries, routing loop) must
    // unwind a real compile with the right quiet category.
    const auto backend = makeMusstiBackend();

    JobControl timed_out;
    timed_out.deadline = std::chrono::steady_clock::now() -
                         std::chrono::milliseconds(1);
    DeltaCompileIO delta;
    try {
        (void)backend->compileControlled(makeBenchmark("ghz", 24), {},
                                         nullptr, delta, &timed_out);
        FAIL() << "expected Timeout";
    } catch (const MusstiError &err) {
        EXPECT_EQ(err.category(), ErrorCategory::Timeout);
    }

    const std::atomic<bool> fired{true};
    JobControl cancelled;
    cancelled.cancel = &fired;
    cancelled.checkEveryGates = 1;
    DeltaCompileIO delta2;
    try {
        (void)backend->compileControlled(makeBenchmark("ghz", 24), {},
                                         nullptr, delta2, &cancelled);
        FAIL() << "expected Cancelled";
    } catch (const MusstiError &err) {
        EXPECT_EQ(err.category(), ErrorCategory::Cancelled);
    }

    // A null control compiles exactly like the plain path.
    DeltaCompileIO delta3;
    const CompileResult controlled = backend->compileControlled(
        makeBenchmark("ghz", 24), {}, nullptr, delta3, nullptr);
    expectIdentical(controlled, backend->compile(makeBenchmark("ghz", 24)));
}

TEST(CompileService, CacheEvictsLeastRecentlyUsed)
{
    CompileServiceConfig service_config;
    service_config.numThreads = 1;
    service_config.cacheCapacity = 2;
    CompileService service(service_config);
    const auto backend = makeMusstiBackend();

    const Circuit a = makeBenchmark("ghz", 30);
    const Circuit b = makeBenchmark("ghz", 31);
    const Circuit c = makeBenchmark("ghz", 33);

    (void)service.submit(backend, a).get(); // cache: a
    (void)service.submit(backend, b).get(); // cache: b a
    (void)service.submit(backend, a).get(); // hit -> a b
    (void)service.submit(backend, c).get(); // evicts b -> c a
    (void)service.submit(backend, b).get(); // miss again
    EXPECT_EQ(service.jobsExecuted(), 4u);
    EXPECT_EQ(service.cacheHits(), 1u);
}

TEST(CompileService, EvictedJobIsCachedAgainOnResubmit)
{
    // After a capacity eviction, re-submitting the evicted job must
    // recompile once, re-enter the cache, and then hit.
    CompileServiceConfig service_config;
    service_config.numThreads = 1;
    service_config.cacheCapacity = 2;
    CompileService service(service_config);
    const auto backend = makeMusstiBackend();

    const Circuit a = makeBenchmark("ghz", 30);
    const Circuit b = makeBenchmark("ghz", 31);
    const Circuit c = makeBenchmark("ghz", 33);

    const auto first_a = service.submit(backend, a).get();
    (void)service.submit(backend, b).get();
    (void)service.submit(backend, c).get(); // cache full: evicts a
    EXPECT_EQ(service.jobsExecuted(), 3u);

    const auto second_a = service.submit(backend, a).get(); // miss
    EXPECT_EQ(service.jobsExecuted(), 4u);
    const auto third_a = service.submit(backend, a).get(); // hit again
    EXPECT_EQ(service.jobsExecuted(), 4u);
    EXPECT_EQ(service.cacheHits(), 1u);
    expectIdentical(first_a, second_a);
    expectIdentical(second_a, third_a);
}

TEST(CompileService, CacheStatsTrackBothTiers)
{
    // One base compile seeds both tiers; a repeat hits the result
    // cache (no snapshot probe); an extended circuit misses the result
    // cache, hits the snapshot tier, and delta-resumes. Every counter
    // of the accessor must reflect exactly that history.
    CompileServiceConfig service_config;
    service_config.numThreads = 1;
    service_config.cacheCapacity = 2;
    service_config.snapshotCacheCapacity = 8;
    CompileService service(service_config);

    MusstiConfig config;
    config.deltaCompile = true;
    config.deltaCheckpointGates = 16;
    const auto backend = makeMusstiBackend(config);

    // Deep enough that the appended layer sits beyond the scheduler's
    // 64-layer look-ahead horizon — shallower circuits always fall
    // back cold and would leave the resume counters untested.
    const Circuit base = makeIsing(24, 40);
    const Circuit longer = makeIsing(24, 41);

    (void)service.submit(backend, base).get();
    (void)service.submit(backend, base).get();
    const CompileResult extended =
        service.submit(backend, longer).get();
    EXPECT_TRUE(extended.deltaResumed);

    const CompileService::CacheStats stats = service.cacheStats();
    EXPECT_EQ(stats.resultHits, 1u);
    EXPECT_EQ(stats.resultMisses, 2u);
    EXPECT_EQ(stats.resultEvictions, 0u);
    EXPECT_EQ(stats.snapshotHits, 1u);
    EXPECT_EQ(stats.snapshotMisses, 1u);
    EXPECT_EQ(stats.deltaResumes, 1u);
    EXPECT_EQ(stats.deltaFallbacks, 0u);
    EXPECT_GT(stats.snapshotCount, 0u);
    EXPECT_GT(stats.snapshotBytes, 0u);

    // A fault-free run books nothing on the failure paths.
    EXPECT_EQ(stats.jobsFailed, 0u);
    EXPECT_EQ(stats.jobsTimedOut, 0u);
    EXPECT_EQ(stats.jobsCancelled, 0u);
    EXPECT_EQ(stats.jobsRetried, 0u);
    EXPECT_EQ(stats.deltaQuarantines, 0u);
    EXPECT_FALSE(stats.deltaQuarantined);
}

TEST(CompileService, ParseThreadCountValidatesInput)
{
    // Auto (hardware concurrency) cases.
    EXPECT_EQ(CompileService::parseThreadCount(nullptr), 0);
    EXPECT_EQ(CompileService::parseThreadCount(""), 0);

    // Well-formed values pass through.
    EXPECT_EQ(CompileService::parseThreadCount("1"), 1);
    EXPECT_EQ(CompileService::parseThreadCount("16"), 16);

    // Garbage and non-positive values fall back to auto (std::atoi
    // silently turned these into 0 or accepted them).
    EXPECT_EQ(CompileService::parseThreadCount("lots"), 0);
    EXPECT_EQ(CompileService::parseThreadCount("4x"), 0);
    EXPECT_EQ(CompileService::parseThreadCount("0"), 0);
    EXPECT_EQ(CompileService::parseThreadCount("-3"), 0);

    // Absurd values clamp.
    EXPECT_EQ(CompileService::parseThreadCount("99999"),
              CompileService::kMaxThreads);
}

} // namespace
} // namespace mussti
