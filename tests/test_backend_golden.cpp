/**
 * @file
 * Golden FNV fingerprints across ALL stock backends — mussti + the
 * murali/dai/mqt grid baselines — captured from the tree immediately
 * before the TargetDevice refactor (dual CompileContext device slots,
 * per-call GridDevice::hopDistance). The polymorphic device layer, the
 * shared adjacency/hop tables, and the DeviceRegistry must be pure
 * restructurings: every backend's schedules, placements, counters, and
 * metrics stay bit-identical. If an INTENTIONAL behaviour change ever
 * lands, refresh these constants in the same commit and say so in its
 * message.
 *
 * (tests/test_scheduler.cpp pins the mussti-only trajectory back to
 * PR 1; this suite pins the device layer across every backend family.)
 */
#include <gtest/gtest.h>

#include "baselines/backend_factory.h"
#include "common/hash.h"
#include "core/compiler.h"
#include "sim/validator.h"
#include "workloads/workloads.h"

namespace mussti {
namespace {

/** FNV-1a over everything a compilation produces (the same digest as
 * tests/test_scheduler.cpp, duplicated to keep both suites
 * self-contained). */
std::uint64_t
scheduleFingerprint(const CompileResult &r)
{
    Fnv1a h;
    h.update(static_cast<std::uint64_t>(r.schedule.ops.size()));
    for (const ScheduledOp &op : r.schedule.ops) {
        h.update(static_cast<int>(op.kind));
        h.update(op.q0);
        h.update(op.q1);
        h.update(op.zoneFrom);
        h.update(op.zoneTo);
        h.update(op.durationUs);
        h.update(op.nbar);
        h.update(op.circuitGate);
        h.update(op.inserted);
        h.update(op.enterFront);
    }
    for (const auto &chain : r.schedule.initialChains) {
        h.update(static_cast<std::uint64_t>(chain.size()));
        for (int q : chain)
            h.update(q);
    }
    for (const auto &chain : r.finalChains) {
        h.update(static_cast<std::uint64_t>(chain.size()));
        for (int q : chain)
            h.update(q);
    }
    h.update(r.schedule.shuttleCount);
    h.update(r.schedule.ionSwapCount);
    h.update(r.schedule.insertedSwapGates);
    h.update(r.swapInsertions);
    h.update(r.evictions);
    h.update(r.metrics.shuttleCount);
    h.update(r.metrics.executionTimeUs);
    h.update(r.metrics.lnFidelity);
    return h.digest();
}

TEST(BackendGolden, MusstiBitIdenticalAcrossDeviceRefactor)
{
    struct Case
    {
        const char *family;
        int qubits;
        std::uint64_t fingerprint;
    };
    const Case cases[] = {
        {"adder", 48, 0x7f671609132e03adull},
        {"qaoa", 48, 0xc0f43afa63592fb0ull},
        {"ghz", 64, 0xde02e8451cc0bd8aull},
        {"qft", 32, 0x0fe7e02abaeb3ec6ull},
    };
    for (const Case &c : cases) {
        const auto result =
            MusstiCompiler().compile(makeBenchmark(c.family, c.qubits));
        EXPECT_EQ(scheduleFingerprint(result), c.fingerprint)
            << "mussti " << c.family << "_n" << c.qubits
            << " diverged across the TargetDevice refactor";
    }
}

TEST(BackendGolden, GridBaselinesBitIdenticalAcrossDeviceRefactor)
{
    struct Case
    {
        const char *backend;
        const char *family;
        int qubits;
        GridConfig grid;
        std::uint64_t fingerprint;
    };
    const Case cases[] = {
        {"murali", "adder", 48, {4, 3, 16}, 0xc4ec41457a324f77ull},
        {"murali", "qft", 32, {2, 2, 16}, 0x50e73ecb48d166e5ull},
        {"murali", "bv", 32, {3, 2, 8}, 0xe9c1bfafdb69b810ull},
        {"dai", "adder", 48, {4, 3, 16}, 0x8b23b5261dd8d955ull},
        {"dai", "qft", 32, {2, 2, 16}, 0xc271b99a0b955140ull},
        {"dai", "bv", 32, {3, 2, 8}, 0x318c315989406178ull},
        {"mqt", "adder", 48, {4, 3, 16}, 0x37289e63309698d3ull},
        {"mqt", "qft", 32, {2, 2, 16}, 0xf058c42d78d034f1ull},
        {"mqt", "bv", 32, {3, 2, 8}, 0xbf17ca89a7a6682full},
    };
    for (const Case &c : cases) {
        const auto backend = makeGridBackend(c.backend, c.grid);
        const Circuit qc = makeBenchmark(c.family, c.qubits);
        const auto result = backend->compile(qc);
        EXPECT_EQ(scheduleFingerprint(result), c.fingerprint)
            << c.backend << " " << c.family << "_n" << c.qubits
            << " on " << c.grid.width << "x" << c.grid.height
            << " diverged across the TargetDevice refactor";
        // The fingerprint freezes behaviour; the validator proves the
        // frozen behaviour is legal too.
        const GridDevice device(c.grid);
        EXPECT_TRUE(ScheduleValidator(device).validate(result.schedule,
                                                       result.lowered));
    }
}

} // namespace
} // namespace mussti
