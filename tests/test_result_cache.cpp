/**
 * @file
 * Tests for the pluggable result-cache tiers (core/result_cache.h):
 * bit-exact serializer round-trips, the disk tier's hit/miss/eviction
 * behaviour, and — the point of the format's paranoia — that every
 * flavour of on-disk damage (truncation, garbage, version skew, racing
 * writers) degrades to a MISS with the corrupt counter ticking, never
 * to a wrong result and never to an exception on the compile path.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "baselines/backend_factory.h"
#include "core/compile_service.h"
#include "core/pipeline.h"
#include "core/result_cache.h"
#include "workloads/workloads.h"

namespace fs = std::filesystem;

namespace mussti {
namespace {

/** Fresh scratch directory, removed on scope exit. */
class ScratchDir
{
  public:
    ScratchDir()
    {
        path_ = fs::temp_directory_path() /
                fs::path("mussti_cache_test_" +
                         std::to_string(::getpid()) + "_" +
                         std::to_string(counter_++));
        fs::create_directories(path_);
    }
    ~ScratchDir()
    {
        std::error_code ec;
        fs::remove_all(path_, ec);
    }

    std::string str() const { return path_.string(); }
    const fs::path &path() const { return path_; }

  private:
    static inline int counter_ = 0;
    fs::path path_;
};

/** One real compile to cache (every field populated by the pipeline). */
const CompileResult &
sampleResult()
{
    static const CompileResult result =
        makeMusstiBackend()->compile(makeBenchmark("ghz", 12));
    return result;
}

ResultCacheKey
sampleKey(std::uint64_t salt = 0)
{
    ResultCacheKey key;
    key.circuitHash = 0x1234 + salt;
    key.configDigest = 0x5678;
    key.seed = 42;
    key.hasSeed = true;
    return key;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

void
writeFile(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
}

TEST(ResultSerializer, RoundTripsBitExact)
{
    const CompileResult &original = sampleResult();
    const std::string bytes = serializeCompileResult(original);
    const std::optional<CompileResult> back =
        deserializeCompileResult(bytes);
    ASSERT_TRUE(back.has_value());

    // The fingerprint covers every schedule-defining field; the rest
    // are checked explicitly (timing fields round-trip as raw bits).
    EXPECT_EQ(resultFingerprint(original), resultFingerprint(*back));
    EXPECT_EQ(original.lowered.size(), back->lowered.size());
    EXPECT_EQ(original.lowered.name(), back->lowered.name());
    EXPECT_EQ(original.compileTimeSec, back->compileTimeSec);
    EXPECT_EQ(original.routingSteps, back->routingSteps);
    EXPECT_EQ(original.schedulerHeapAllocs, back->schedulerHeapAllocs);
    EXPECT_EQ(original.deltaResumed, back->deltaResumed);
    ASSERT_EQ(original.passTrace.size(), back->passTrace.size());
    for (std::size_t i = 0; i < original.passTrace.size(); ++i) {
        EXPECT_EQ(original.passTrace[i].pass, back->passTrace[i].pass);
        EXPECT_EQ(original.passTrace[i].seconds,
                  back->passTrace[i].seconds);
    }
}

TEST(ResultSerializer, EveryTruncationIsRejectedNotCrashed)
{
    const std::string bytes = serializeCompileResult(sampleResult());
    ASSERT_GT(bytes.size(), 64u);
    // Every prefix is malformed: too-short buffers must come back
    // nullopt from the bounds-checked reader, never throw or UB.
    for (std::size_t len = 0; len < bytes.size();
         len += (len < 128 ? 1 : 97))
        EXPECT_FALSE(
            deserializeCompileResult(bytes.substr(0, len)).has_value())
            << "truncation at " << len << " bytes";
    // Trailing garbage is malformed too (atEnd is part of the format).
    EXPECT_FALSE(deserializeCompileResult(bytes + "x").has_value());
}

TEST(DiskCache, StoreThenLookupHitsAndCounts)
{
    const ScratchDir dir;
    DiskResultCache cache(dir.str(), 16);
    const ResultCacheKey key = sampleKey();

    EXPECT_FALSE(cache.lookup(key).has_value()); // cold miss
    cache.store(key, sampleResult());
    const std::optional<CompileResult> hit = cache.lookup(key);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(resultFingerprint(sampleResult()),
              resultFingerprint(*hit));

    const ResultTierStats stats = cache.stats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.corrupt, 0u);
}

TEST(DiskCache, SecondProcessSeesTheEntry)
{
    // Persistence is the tier's reason to exist: a fresh instance over
    // the same directory (a restarted server) serves the entry.
    const ScratchDir dir;
    const ResultCacheKey key = sampleKey();
    DiskResultCache(dir.str(), 16).store(key, sampleResult());

    DiskResultCache reopened(dir.str(), 16);
    const std::optional<CompileResult> hit = reopened.lookup(key);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(resultFingerprint(sampleResult()),
              resultFingerprint(*hit));
}

TEST(DiskCache, TruncatedEntryIsAMissAndQuarantined)
{
    const ScratchDir dir;
    DiskResultCache cache(dir.str(), 16);
    const ResultCacheKey key = sampleKey();
    cache.store(key, sampleResult());

    const std::string path = cache.entryPathFor(key);
    const std::string bytes = readFile(path);
    writeFile(path, bytes.substr(0, bytes.size() / 2));

    EXPECT_FALSE(cache.lookup(key).has_value());
    EXPECT_EQ(cache.stats().corrupt, 1u);
    EXPECT_FALSE(fs::exists(path)); // moved out of the lookup path
    EXPECT_TRUE(fs::exists(dir.path() / "quarantine" /
                           fs::path(path).filename()));

    // The slot is reusable: a fresh store serves again.
    cache.store(key, sampleResult());
    EXPECT_TRUE(cache.lookup(key).has_value());
}

TEST(DiskCache, GarbageHeaderIsAMissNeverAnError)
{
    const ScratchDir dir;
    DiskResultCache cache(dir.str(), 16);
    const ResultCacheKey key = sampleKey();
    writeFile(cache.entryPathFor(key),
              "this is not a cache entry at all, not even close");

    EXPECT_FALSE(cache.lookup(key).has_value());
    const ResultTierStats stats = cache.stats();
    EXPECT_EQ(stats.corrupt, 1u);
    EXPECT_EQ(stats.misses, 1u);
}

TEST(DiskCache, VersionMismatchIsAMiss)
{
    const ScratchDir dir;
    DiskResultCache cache(dir.str(), 16);
    const ResultCacheKey key = sampleKey();
    cache.store(key, sampleResult());

    // Header layout: 8-byte magic, then the u32 format version (LE).
    const std::string path = cache.entryPathFor(key);
    std::string bytes = readFile(path);
    ASSERT_GT(bytes.size(), 12u);
    bytes[8] = static_cast<char>(DiskResultCache::kFormatVersion + 1);
    writeFile(path, bytes);

    EXPECT_FALSE(cache.lookup(key).has_value());
    EXPECT_EQ(cache.stats().corrupt, 1u);
}

TEST(DiskCache, KeyEchoMismatchIsAMiss)
{
    // A file landing under the wrong name (digest collision, manual
    // copy) must not serve: the header echoes the full key.
    const ScratchDir dir;
    DiskResultCache cache(dir.str(), 16);
    const ResultCacheKey key = sampleKey();
    const ResultCacheKey other = sampleKey(999);
    cache.store(key, sampleResult());
    fs::copy_file(cache.entryPathFor(key), cache.entryPathFor(other));

    EXPECT_FALSE(cache.lookup(other).has_value());
    EXPECT_EQ(cache.stats().corrupt, 1u);
    EXPECT_TRUE(cache.lookup(key).has_value()); // incumbent untouched
}

TEST(DiskCache, ConcurrentWritersAndReadersStayCorrect)
{
    // Atomic write-then-rename: readers racing writers on one key see
    // either a miss or a COMPLETE entry — never a torn read surfacing
    // as corruption or a wrong result.
    const ScratchDir dir;
    DiskResultCache cache(dir.str(), 16);
    const ResultCacheKey key = sampleKey();
    const std::uint64_t want = resultFingerprint(sampleResult());

    std::vector<std::thread> threads;
    for (int w = 0; w < 4; ++w)
        threads.emplace_back(
            [&cache, &key] { cache.store(key, sampleResult()); });
    for (int r = 0; r < 4; ++r)
        threads.emplace_back([&cache, &key, want] {
            for (int i = 0; i < 20; ++i) {
                const std::optional<CompileResult> hit =
                    cache.lookup(key);
                if (hit)
                    EXPECT_EQ(want, resultFingerprint(*hit));
            }
        });
    for (std::thread &thread : threads)
        thread.join();

    EXPECT_EQ(cache.stats().corrupt, 0u);
    ASSERT_TRUE(cache.lookup(key).has_value());
}

TEST(DiskCache, CapacityEvictsOldestEntries)
{
    const ScratchDir dir;
    DiskResultCache cache(dir.str(), 2);
    cache.store(sampleKey(1), sampleResult());
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    cache.store(sampleKey(2), sampleResult());
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    cache.store(sampleKey(3), sampleResult());

    EXPECT_GE(cache.stats().evictions, 1u);
    EXPECT_FALSE(cache.lookup(sampleKey(1)).has_value()); // oldest out
    EXPECT_TRUE(cache.lookup(sampleKey(3)).has_value());
}

TEST(ServiceDiskTier, CorruptEntryRecompilesAndCounterReconciles)
{
    // End-to-end through the service: a corrupted persistent entry must
    // cost exactly one recompile (a miss), tick diskTier.corrupt, and
    // serve the SAME result as the undamaged path — never an Internal
    // error, never a wrong schedule.
    const ScratchDir dir;
    const auto backend = makeMusstiBackend();
    const Circuit circuit = makeBenchmark("ghz", 12);

    CompileServiceConfig config;
    config.numThreads = 1;
    config.cacheCapacity = 4;
    config.diskCachePath = dir.str();
    std::uint64_t want = 0;
    {
        CompileService service(config);
        want = resultFingerprint(
            service.submit(backend, circuit).get());
    }

    // Damage the one entry the compile stored.
    std::vector<fs::path> entries;
    for (const auto &entry : fs::directory_iterator(dir.path()))
        if (entry.path().extension() == ".mstc")
            entries.push_back(entry.path());
    ASSERT_EQ(entries.size(), 1u);
    const std::string bytes = readFile(entries.front().string());
    writeFile(entries.front().string(),
              bytes.substr(0, bytes.size() - 7));

    CompileService service(config);
    const CompileResult result =
        service.submit(backend, circuit).get();
    EXPECT_EQ(want, resultFingerprint(result));

    const CompileService::CacheStats stats = service.cacheStats();
    EXPECT_EQ(stats.diskTier.corrupt, 1u);
    EXPECT_EQ(stats.diskTier.hits, 0u);
    EXPECT_EQ(stats.resultMisses, 1u); // it recompiled, once

    // And the recompile re-stored a healthy entry: a third service
    // over the same directory serves from disk without compiling.
    CompileService warm(config);
    EXPECT_EQ(want, resultFingerprint(
                        warm.submit(backend, circuit).get()));
    EXPECT_EQ(warm.cacheStats().diskTier.hits, 1u);
    EXPECT_EQ(warm.jobsExecuted(), 0u);
}

} // namespace
} // namespace mussti
