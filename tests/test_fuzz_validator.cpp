/**
 * @file
 * Mutation testing of the schedule validator: take a known-valid
 * compiled schedule and apply systematic corruptions; the validator
 * must reject every mutant. This is the adversarial counterpart of the
 * positive tests — it proves the test oracle itself has teeth, so the
 * green compiler suites mean something.
 */
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/compiler.h"
#include "sim/validator.h"
#include "workloads/workloads.h"

namespace mussti {
namespace {

struct Compiled
{
    Circuit lowered;
    Schedule schedule;
    EmlDevice device;

    Compiled(const Circuit &qc, const MusstiConfig &config)
        : lowered(qc), device(config.device, qc.numQubits())
    {
        auto result = MusstiCompiler(config).compile(qc);
        lowered = result.lowered;
        schedule = std::move(result.schedule);
    }
};

Compiled
makeCompiled()
{
    MusstiConfig config;
    // QFT exercises every op kind including evictions and ion swaps.
    return Compiled(makeQft(48), config);
}

bool
isValid(const Compiled &c, const Schedule &mutant)
{
    return static_cast<bool>(
        ScheduleValidator(c.device.zoneInfos()).validate(mutant,
                                                         c.lowered));
}

TEST(FuzzValidator, BaselineIsValid)
{
    const Compiled c = makeCompiled();
    EXPECT_TRUE(isValid(c, c.schedule));
}

TEST(FuzzValidator, DroppingAnyGateOpIsRejected)
{
    const Compiled c = makeCompiled();
    Rng rng(3);
    int tried = 0;
    for (int attempt = 0; attempt < 2000 && tried < 25; ++attempt) {
        const std::size_t i = rng.uniform(c.schedule.ops.size());
        if (!c.schedule.ops[i].isGate() ||
            c.schedule.ops[i].kind == OpKind::Gate1Q ||
            c.schedule.ops[i].inserted)
            continue;
        Schedule mutant = c.schedule;
        mutant.ops.erase(mutant.ops.begin() + i);
        EXPECT_FALSE(isValid(c, mutant)) << "dropped gate op " << i;
        ++tried;
    }
    EXPECT_GE(tried, 10);
}

TEST(FuzzValidator, DroppingAnyMergeIsRejected)
{
    const Compiled c = makeCompiled();
    int tried = 0;
    for (std::size_t i = 0; i < c.schedule.ops.size() && tried < 15;
         ++i) {
        if (c.schedule.ops[i].kind != OpKind::Merge)
            continue;
        Schedule mutant = c.schedule;
        mutant.ops.erase(mutant.ops.begin() + i);
        EXPECT_FALSE(isValid(c, mutant)) << "dropped merge " << i;
        ++tried;
    }
    EXPECT_GE(tried, 5);
}

TEST(FuzzValidator, SwappingAdjacentDependentGatesIsRejected)
{
    const Compiled c = makeCompiled();
    int tried = 0;
    for (std::size_t i = 0; i + 1 < c.schedule.ops.size() && tried < 20;
         ++i) {
        const auto &a = c.schedule.ops[i];
        const auto &b = c.schedule.ops[i + 1];
        const bool both_real_gates =
            a.kind == OpKind::Gate2Q && b.kind == OpKind::Gate2Q &&
            !a.inserted && !b.inserted;
        if (!both_real_gates)
            continue;
        const bool dependent = b.q0 == a.q0 || b.q0 == a.q1 ||
                               b.q1 == a.q0 || b.q1 == a.q1;
        if (!dependent)
            continue;
        Schedule mutant = c.schedule;
        std::swap(mutant.ops[i], mutant.ops[i + 1]);
        EXPECT_FALSE(isValid(c, mutant)) << "swapped gates at " << i;
        ++tried;
    }
    EXPECT_GE(tried, 3);
}

TEST(FuzzValidator, RetargetingMovesIsRejected)
{
    const Compiled c = makeCompiled();
    int tried = 0;
    for (std::size_t i = 0; i < c.schedule.ops.size() && tried < 15;
         ++i) {
        if (c.schedule.ops[i].kind != OpKind::Move)
            continue;
        Schedule mutant = c.schedule;
        // Redirect the move to a different zone; the following merge's
        // zone no longer matches.
        mutant.ops[i].zoneTo =
            (mutant.ops[i].zoneTo + 1) % c.device.numZones();
        EXPECT_FALSE(isValid(c, mutant)) << "retargeted move " << i;
        ++tried;
    }
    EXPECT_GE(tried, 5);
}

TEST(FuzzValidator, CorruptingGateOperandsIsRejected)
{
    const Compiled c = makeCompiled();
    Rng rng(11);
    int tried = 0;
    for (int attempt = 0; attempt < 2000 && tried < 25; ++attempt) {
        const std::size_t i = rng.uniform(c.schedule.ops.size());
        const auto &op = c.schedule.ops[i];
        if (op.kind != OpKind::Gate2Q || op.inserted)
            continue;
        Schedule mutant = c.schedule;
        mutant.ops[i].q1 =
            (op.q1 + 1 + static_cast<int>(rng.uniform(
                 c.lowered.numQubits() - 1))) % c.lowered.numQubits();
        if (mutant.ops[i].q1 == mutant.ops[i].q0)
            continue;
        EXPECT_FALSE(isValid(c, mutant)) << "corrupted operands " << i;
        ++tried;
    }
    EXPECT_GE(tried, 10);
}

TEST(FuzzValidator, DuplicatingGatesIsRejected)
{
    const Compiled c = makeCompiled();
    int tried = 0;
    for (std::size_t i = 0; i < c.schedule.ops.size() && tried < 10;
         ++i) {
        if (c.schedule.ops[i].kind != OpKind::Gate2Q ||
            c.schedule.ops[i].inserted)
            continue;
        Schedule mutant = c.schedule;
        mutant.ops.insert(mutant.ops.begin() + i, c.schedule.ops[i]);
        EXPECT_FALSE(isValid(c, mutant)) << "duplicated gate " << i;
        ++tried;
    }
    EXPECT_GE(tried, 5);
}

TEST(FuzzValidator, CorruptingInitialChainsIsRejected)
{
    const Compiled c = makeCompiled();
    // Duplicate a qubit placement.
    {
        Schedule mutant = c.schedule;
        mutant.initialChains[0].push_back(
            mutant.initialChains[0].empty()
                ? 0 : mutant.initialChains[0].front());
        EXPECT_FALSE(isValid(c, mutant));
    }
    // Drop a qubit entirely.
    {
        Schedule mutant = c.schedule;
        for (auto &chain : mutant.initialChains) {
            if (!chain.empty()) {
                chain.pop_back();
                break;
            }
        }
        EXPECT_FALSE(isValid(c, mutant));
    }
}

TEST(FuzzValidator, MarkingRealGateAsInsertedIsRejected)
{
    const Compiled c = makeCompiled();
    Schedule mutant = c.schedule;
    for (auto &op : mutant.ops) {
        if (op.kind == OpKind::Gate2Q && !op.inserted) {
            op.inserted = true; // a lone "inserted" gate: broken triple
            break;
        }
    }
    EXPECT_FALSE(isValid(c, mutant));
}

TEST(FuzzValidator, CrossModuleBaselineAlsoFuzzes)
{
    // Multi-module circuit with fiber gates and inserted SWAPs.
    MusstiConfig config;
    Compiled c(makeSqrt(117), config);
    ASSERT_TRUE(isValid(c, c.schedule));

    // Dropping a fiber gate breaks coverage.
    Schedule mutant = c.schedule;
    for (std::size_t i = 0; i < mutant.ops.size(); ++i) {
        if (mutant.ops[i].kind == OpKind::FiberGate &&
            !mutant.ops[i].inserted) {
            mutant.ops.erase(mutant.ops.begin() + i);
            break;
        }
    }
    EXPECT_FALSE(isValid(c, mutant));

    // Dropping one gate of an inserted triple breaks P5.
    Schedule mutant2 = c.schedule;
    for (std::size_t i = 0; i < mutant2.ops.size(); ++i) {
        if (mutant2.ops[i].inserted) {
            mutant2.ops.erase(mutant2.ops.begin() + i);
            break;
        }
    }
    EXPECT_FALSE(isValid(c, mutant2));
}

} // namespace
} // namespace mussti
