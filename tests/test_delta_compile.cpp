/**
 * @file
 * Delta-compilation bit-identity: a warm compile resumed from a cached
 * ScheduleSnapshot must equal a cold compile of the same circuit in
 * every observable — schedule ops, placements, counters, metrics —
 * across both EML device shapes, and the snapshot tier must leave the
 * grid baseline backends (which have no delta path) untouched on both
 * grid shapes. The cold path with the knob off is the oracle
 * throughout, matching the discipline of tests/test_backend_golden.cpp:
 * the knob may only change speed, never output.
 */
#include <gtest/gtest.h>

#include "arch/device_registry.h"
#include "baselines/backend_factory.h"
#include "common/hash.h"
#include "core/compile_service.h"
#include "core/compiler.h"
#include "workloads/workloads.h"

namespace mussti {
namespace {

/** FNV-1a over everything a compilation produces (the same digest as
 * tests/test_scheduler.cpp / test_backend_golden.cpp, duplicated to
 * keep each suite self-contained). */
std::uint64_t
scheduleFingerprint(const CompileResult &r)
{
    Fnv1a h;
    h.update(static_cast<std::uint64_t>(r.schedule.ops.size()));
    for (const ScheduledOp &op : r.schedule.ops) {
        h.update(static_cast<int>(op.kind));
        h.update(op.q0);
        h.update(op.q1);
        h.update(op.zoneFrom);
        h.update(op.zoneTo);
        h.update(op.durationUs);
        h.update(op.nbar);
        h.update(op.circuitGate);
        h.update(op.inserted);
        h.update(op.enterFront);
    }
    for (const auto &chain : r.schedule.initialChains) {
        h.update(static_cast<std::uint64_t>(chain.size()));
        for (int q : chain)
            h.update(q);
    }
    for (const auto &chain : r.finalChains) {
        h.update(static_cast<std::uint64_t>(chain.size()));
        for (int q : chain)
            h.update(q);
    }
    h.update(r.schedule.shuttleCount);
    h.update(r.schedule.ionSwapCount);
    h.update(r.schedule.insertedSwapGates);
    h.update(r.swapInsertions);
    h.update(r.evictions);
    h.update(r.metrics.shuttleCount);
    h.update(r.metrics.executionTimeUs);
    h.update(r.metrics.lnFidelity);
    return h.digest();
}

/** Re-parameterize: rz angles nudged in the last quarter of gates, so
 * the prefix chain diverges mid-circuit rather than at the end. */
Circuit
reparamTail(const Circuit &base)
{
    Circuit edited(base.numQubits(), base.name());
    const std::size_t pivot = base.size() - base.size() / 4;
    for (std::size_t i = 0; i < base.size(); ++i) {
        Gate g = base[i];
        if (i >= pivot && g.kind == GateKind::Rz)
            g.param += 0.25;
        edited.add(g);
    }
    return edited;
}

/** A single-worker service with the result cache OFF (so the edited
 * job must really compile) and the snapshot tier on. */
CompileServiceConfig
deltaServiceConfig()
{
    CompileServiceConfig svc;
    svc.numThreads = 1;
    svc.cacheCapacity = 0;
    svc.snapshotCacheCapacity = 32;
    return svc;
}

TEST(DeltaCompile, MusstiWarmMatchesColdAcrossDeviceShapes)
{
    // Both EML shapes: the homogeneous default and a registry-built
    // heterogeneous mix (2 modules x maxq=16 fits the 32q workloads).
    // The hetero traps are capacity-starved (cap=8) so the schedule
    // needs real routing — on a device where every gate drains as
    // immediately executable the scheduler never reaches a resumable
    // point, captures nothing, and the test would pass vacuously.
    struct Shape
    {
        const char *label;
        const char *spec; // nullptr = homogeneous defaults
    };
    const Shape shapes[] = {
        {"homogeneous", nullptr},
        {"hetero2", "eml:hetero=2.1.1-2.1.1,cap=8,maxq=16"},
    };
    // 40 Trotter steps ~= 160 two-qubit layers: comfortably deeper
    // than the scheduler's look-ahead horizon (64 layers), which a
    // resumable prefix must clear — shallower circuits fall back to
    // cold wholesale, and this test must exercise real resumes.
    const Circuit base = makeIsing(32, 40);
    const Circuit edits[] = {makeIsing(32, 41), reparamTail(base)};

    for (const Shape &shape : shapes) {
        MusstiConfig config; // paper defaults: SABRE mapping
        if (shape.spec != nullptr)
            config.device = DeviceRegistry::parse(shape.spec).eml;

        MusstiConfig delta_config = config;
        delta_config.deltaCompile = true;
        const auto oracle = std::make_shared<MusstiCompiler>(config);
        const auto warm_backend =
            std::make_shared<MusstiCompiler>(delta_config);

        for (const Circuit &edited : edits) {
            // Cold oracle: plain compile, knob off.
            const std::uint64_t cold =
                scheduleFingerprint(oracle->compile(edited));

            // Warm: base seeds the snapshot cache, the edited job
            // resumes from it.
            CompileService service(deltaServiceConfig());
            service.submit(warm_backend, base).get();
            const CompileResult warm_result =
                service.submit(warm_backend, edited).get();

            EXPECT_EQ(scheduleFingerprint(warm_result), cold)
                << shape.label << " " << edited.name()
                << ": delta-resumed compile diverged from the cold "
                   "oracle";
            // The equality must not hold vacuously: the warm job has
            // to have taken the resume path it claims to test.
            EXPECT_TRUE(warm_result.deltaResumed)
                << shape.label << " " << edited.name()
                << ": edited compile scheduled cold";
            const CompileService::CacheStats stats =
                service.cacheStats();
            EXPECT_GE(stats.deltaResumes, 1u);
            EXPECT_EQ(stats.deltaFallbacks, 0u);
        }
    }
}

TEST(DeltaCompile, GridBaselinesUnaffectedByDeltaService)
{
    // The murali/dai/mqt baselines have no delta path; routing them
    // through a snapshot-tier service twice (second submission probes
    // the tier) must reproduce the direct cold compile exactly, on
    // both grid shapes.
    struct Case
    {
        const char *backend;
        const char *family;
        int qubits;
        GridConfig grid;
    };
    const Case cases[] = {
        {"murali", "adder", 48, {4, 3, 16}},
        {"murali", "qft", 32, {2, 2, 16}},
        {"dai", "adder", 48, {4, 3, 16}},
        {"dai", "qft", 32, {2, 2, 16}},
        {"mqt", "adder", 48, {4, 3, 16}},
        {"mqt", "qft", 32, {2, 2, 16}},
    };
    for (const Case &c : cases) {
        const auto backend = makeGridBackend(c.backend, c.grid);
        const Circuit qc = makeBenchmark(c.family, c.qubits);
        const std::uint64_t cold =
            scheduleFingerprint(backend->compile(qc));

        CompileService service(deltaServiceConfig());
        const std::uint64_t first =
            scheduleFingerprint(service.submit(backend, qc).get());
        const CompileResult second = service.submit(backend, qc).get();

        EXPECT_EQ(first, cold)
            << c.backend << " " << c.family << "_n" << c.qubits;
        EXPECT_EQ(scheduleFingerprint(second), cold)
            << c.backend << " " << c.family << "_n" << c.qubits
            << " (second submission)";
        EXPECT_FALSE(second.deltaResumed);
    }
}

} // namespace
} // namespace mussti
