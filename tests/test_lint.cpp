/**
 * @file
 * The lint subsystem's contract tests.
 *
 *  1. Corruption corpus: every generator in src/lint/corrupt.h plants
 *     its violation into a valid schedule and the linter fires EXACTLY
 *     that rule id — no cascade into other rules. The validator agrees
 *     every mutant is illegal (linter and validator never disagree
 *     about validity, only about diagnostic detail).
 *  2. Golden cleanliness: the exact artifacts test_backend_golden.cpp
 *     pins — all four backends — lint with zero findings.
 *  3. Report mechanics: per-rule truncation, renderers, fired-rule set.
 *  4. Spec/search/config linting: each spec.* / search.* / cfg.* rule
 *     has a positive and the defaults stay clean.
 *  5. The opt-in pipeline pass: present iff lintLevel > 0, folded into
 *     configDigest, green on a clean compile at the strict level.
 */
#include <gtest/gtest.h>

#include <algorithm>

#include "arch/device_registry.h"
#include "baselines/backend_factory.h"
#include "core/compiler.h"
#include "lint/corrupt.h"
#include "lint/lint_pass.h"
#include "lint/schedule_linter.h"
#include "lint/spec_linter.h"
#include "sim/validator.h"
#include "workloads/workloads.h"

namespace mussti {
namespace {

/** A compiled artifact plus the device it targets. */
struct Artifact
{
    Circuit lowered{1};
    Schedule schedule;
    std::shared_ptr<const TargetDevice> device;
};

Artifact
compileMussti(const std::string &family, int qubits)
{
    const MusstiConfig config;
    const Circuit qc = makeBenchmark(family, qubits);
    auto result = MusstiCompiler(config).compile(qc);
    Artifact a;
    a.lowered = std::move(result.lowered);
    a.schedule = std::move(result.schedule);
    a.device = DeviceRegistry::createEml(config.device, qc.numQubits());
    return a;
}

// ---------------------------------------------------------------------
// 1. Corruption corpus.
// ---------------------------------------------------------------------

void
runCorpus(const Artifact &base, const char *label)
{
    // The uncorrupted artifact is the corpus baseline: clean by both
    // oracles.
    ASSERT_TRUE(
        lintSchedule(base.schedule, base.lowered, *base.device).clean())
        << label;
    ASSERT_TRUE(ScheduleValidator(*base.device)
                    .validate(base.schedule, base.lowered)
                    .valid)
        << label;

    for (const std::string &rule : corruptibleRules()) {
        Schedule mutant = base.schedule;
        ASSERT_TRUE(corruptSchedule(mutant, base.lowered, *base.device,
                                    rule))
            << label << ": cannot stage " << rule;

        const LintReport report =
            lintSchedule(mutant, base.lowered, *base.device);
        EXPECT_EQ(report.firedRules(), std::vector<std::string>{rule})
            << label << " corruption " << rule << " fired:\n"
            << report.renderText();
        EXPECT_GT(report.errorCount(), 0) << label << " " << rule;

        // Cross-oracle agreement: the replay validator also rejects
        // every mutant (it reports its own first error, which need not
        // be phrased the same way).
        EXPECT_FALSE(ScheduleValidator(*base.device)
                         .validate(mutant, base.lowered)
                         .valid)
            << label << " validator accepted the " << rule << " mutant";
    }
}

TEST(LintCorpus, SingleModuleEveryCorruptionFiresExactlyItsRule)
{
    // QFT exercises every op kind including evictions and ion swaps.
    runCorpus(compileMussti("qft", 48), "qft:48");
}

TEST(LintCorpus, MultiModuleEveryCorruptionFiresExactlyItsRule)
{
    // 117 qubits -> 4 modules: fiber gates and inserted SWAP triples.
    runCorpus(compileMussti("sqrt", 117), "sqrt:117");
}

// ---------------------------------------------------------------------
// 2. Golden artifacts lint clean, all four backends.
// ---------------------------------------------------------------------

TEST(LintGolden, MusstiGoldenSchedulesLintClean)
{
    const struct
    {
        const char *family;
        int qubits;
    } cases[] = {{"adder", 48}, {"qaoa", 48}, {"ghz", 64}, {"qft", 32}};
    for (const auto &c : cases) {
        const Artifact a = compileMussti(c.family, c.qubits);
        const LintReport report =
            lintSchedule(a.schedule, a.lowered, *a.device);
        EXPECT_TRUE(report.clean())
            << "mussti " << c.family << ":" << c.qubits << "\n"
            << report.renderText();
    }
}

TEST(LintGolden, GridBaselineGoldenSchedulesLintClean)
{
    const struct
    {
        const char *backend;
        const char *family;
        int qubits;
        GridConfig grid;
    } cases[] = {
        {"murali", "adder", 48, {4, 3, 16}},
        {"murali", "qft", 32, {2, 2, 16}},
        {"murali", "bv", 32, {3, 2, 8}},
        {"dai", "adder", 48, {4, 3, 16}},
        {"dai", "qft", 32, {2, 2, 16}},
        {"dai", "bv", 32, {3, 2, 8}},
        {"mqt", "adder", 48, {4, 3, 16}},
        {"mqt", "qft", 32, {2, 2, 16}},
        {"mqt", "bv", 32, {3, 2, 8}},
    };
    for (const auto &c : cases) {
        const auto backend = makeGridBackend(c.backend, c.grid);
        const auto result = backend->compile(
            makeBenchmark(c.family, c.qubits));
        const GridDevice device(c.grid);
        const LintReport report =
            lintSchedule(result.schedule, result.lowered, device);
        EXPECT_TRUE(report.clean())
            << c.backend << " " << c.family << ":" << c.qubits << "\n"
            << report.renderText();
    }
}

// ---------------------------------------------------------------------
// 3. Report mechanics.
// ---------------------------------------------------------------------

TEST(LintReportMechanics, PerRuleFindingsAreCappedWithTruncationNote)
{
    const Artifact a = compileMussti("qft", 32);
    Schedule mutant = a.schedule;
    int corrupted = 0;
    for (ScheduledOp &op : mutant.ops) {
        if (op.kind == OpKind::Gate2Q) {
            op.zoneFrom = (op.zoneFrom + 1) % a.device->numZones();
            ++corrupted;
        }
    }
    ASSERT_GT(corrupted, ScheduleLinter::kMaxFindingsPerRule * 2);

    const LintReport report =
        lintSchedule(mutant, a.lowered, *a.device);
    const auto zone_findings = std::count_if(
        report.findings.begin(), report.findings.end(),
        [](const LintFinding &f) {
            return f.rule == lint_rules::kZone;
        });
    EXPECT_EQ(zone_findings, ScheduleLinter::kMaxFindingsPerRule);
    EXPECT_TRUE(report.fired("lint.truncated"));
    EXPECT_EQ(report.errorCount(), ScheduleLinter::kMaxFindingsPerRule);
}

TEST(LintReportMechanics, Renderers)
{
    LintReport report;
    EXPECT_EQ(report.renderText(), "clean: no findings\n");
    EXPECT_NE(report.renderJson().find("\"findings\": []"),
              std::string::npos);

    report.add("sch.zone", LintSeverity::Error, "op 3",
               "a \"quoted\" message");
    report.add("sch.zone", LintSeverity::Warning, "", "second");
    EXPECT_EQ(report.errorCount(), 1);
    EXPECT_EQ(report.warningCount(), 1);
    EXPECT_FALSE(report.ok());
    EXPECT_EQ(report.firedRules(), std::vector<std::string>{"sch.zone"});

    const std::string text = report.renderText();
    EXPECT_NE(text.find("error[sch.zone] op 3: a \"quoted\" message"),
              std::string::npos);
    EXPECT_NE(text.find("1 error(s), 1 warning(s)"), std::string::npos);

    const std::string json = report.renderJson();
    EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
    EXPECT_NE(json.find("\"summary\": {\"errors\": 1, \"warnings\": 1}"),
              std::string::npos);
}

TEST(LintReportMechanics, WrongDeviceZoneCountIsOnePlacementFinding)
{
    const Artifact a = compileMussti("ghz", 16);
    Schedule mutant = a.schedule;
    mutant.initialChains.pop_back();
    const LintReport report =
        lintSchedule(mutant, a.lowered, *a.device);
    EXPECT_TRUE(report.fired(lint_rules::kPlacement));
    EXPECT_FALSE(report.ok());
}

// ---------------------------------------------------------------------
// 4. Spec / search / config linting.
// ---------------------------------------------------------------------

TEST(SpecLint, SearchRangeDiagnostics)
{
    // lo > hi: an error the parser would fatal() on.
    auto report = lintSpecSearchText("eml:modules=2..8,cap=16..12");
    EXPECT_TRUE(report.fired(lint_rules::kSearchDegenerateRange));
    EXPECT_FALSE(report.ok());

    // Degenerate lo == hi: legal but suspicious -> warning only.
    report = lintSpecSearchText("eml:cap=16..16");
    EXPECT_TRUE(report.fired(lint_rules::kSearchDegenerateRange));
    EXPECT_TRUE(report.ok());
    EXPECT_TRUE(report.fired(lint_rules::kSearchSingleton));

    // Step wider than the range: enumerates only lo.
    report = lintSpecSearchText("eml:cap=8..32:step=40");
    EXPECT_TRUE(report.fired(lint_rules::kSearchStepOvershoot));

    // A healthy search space is clean.
    report = lintSpecSearchText("eml:modules=2..4,cap=12..20:step=4");
    EXPECT_TRUE(report.clean()) << report.renderText();
    report = lintSpecSearchText("grid:4x3,cap=8..16:step=8");
    EXPECT_TRUE(report.clean()) << report.renderText();
}

TEST(SpecLint, TokenAndFamilyDiagnosticsSuggestNearMisses)
{
    auto report = lintSpecSearchText("eml:caps=16");
    ASSERT_TRUE(report.fired(lint_rules::kSpecToken));
    EXPECT_NE(report.findings.front().message.find("did you mean `cap`"),
              std::string::npos);

    report = lintSpecSearchText("elm:cap=16");
    ASSERT_TRUE(report.fired(lint_rules::kSpecFamily));
    EXPECT_NE(report.findings.front().message.find("did you mean `eml`"),
              std::string::npos);

    report = lintSpecSearchText("cap=16");
    EXPECT_TRUE(report.fired(lint_rules::kSpecFamily));
}

TEST(SpecLint, DeviceSpecRules)
{
    // Trap too small for any entangling gate.
    EmlConfig tiny;
    tiny.trapCapacity = 1;
    EXPECT_TRUE(lintDeviceSpec(DeviceRegistry::specOf(tiny))
                    .fired(lint_rules::kSpecCapacity));

    // A module with no gate-capable zone.
    EmlConfig storage_only;
    storage_only.numOperationZones = 0;
    storage_only.numOpticalZones = 0;
    auto report = lintDeviceSpec(DeviceRegistry::specOf(storage_only));
    EXPECT_TRUE(report.fired(lint_rules::kSpecGateZones));

    // Multi-module device without fiber endpoints.
    EmlConfig dark;
    dark.numOpticalZones = 0;
    dark.forcedNumModules = 2;
    EXPECT_TRUE(lintDeviceSpec(DeviceRegistry::specOf(dark))
                    .fired(lint_rules::kSpecOpticalLink));

    // Workload larger than the device.
    const DeviceSpec grid = DeviceRegistry::parse("grid:2x2,cap=2");
    EXPECT_TRUE(lintDeviceSpec(grid, 64)
                    .fired(lint_rules::kSpecWorkloadFit));
    EXPECT_TRUE(lintDeviceSpec(grid, 8).clean());

    // The paper's default device is clean for its workloads.
    EXPECT_TRUE(
        lintDeviceSpec(DeviceRegistry::specOf(EmlConfig{}), 64).clean());
}

TEST(SpecLint, ConfigKnobRules)
{
    MusstiConfig config;
    EXPECT_TRUE(lintMusstiConfig(config, 32).clean());

    config.swapThreshold = 2;
    EXPECT_TRUE(lintMusstiConfig(config).fired(
        lint_rules::kCfgSwapThreshold));
    config = MusstiConfig{};

    config.lookAhead = 0;
    EXPECT_TRUE(
        lintMusstiConfig(config).fired(lint_rules::kCfgLookahead));
    config = MusstiConfig{};

    config.lookAhead = 100; // horizon stays 64
    auto report = lintMusstiConfig(config);
    EXPECT_TRUE(report.fired(lint_rules::kCfgHorizon));
    EXPECT_TRUE(report.ok()) << "clamping is a warning, not an error";

    config = MusstiConfig{};
    config.nextUseHorizon = 0;
    EXPECT_TRUE(lintMusstiConfig(config).fired(lint_rules::kCfgHorizon));
}

// ---------------------------------------------------------------------
// 5. The opt-in pipeline pass.
// ---------------------------------------------------------------------

TEST(LintPass, PresentExactlyWhenOptedIn)
{
    MusstiConfig off;
    const auto off_names = MusstiCompiler(off).makePipeline().passNames();
    EXPECT_EQ(std::count(off_names.begin(), off_names.end(),
                         "schedule-lint"),
              0);

    MusstiConfig on;
    on.lintLevel = 1;
    const auto on_names = MusstiCompiler(on).makePipeline().passNames();
    EXPECT_EQ(std::count(on_names.begin(), on_names.end(),
                         "schedule-lint"),
              1);
}

TEST(LintPass, StrictLevelIsGreenOnACleanCompile)
{
    MusstiConfig config;
    config.lintLevel = 2; // fatal() on any lint error
    const auto result =
        MusstiCompiler(config).compile(makeBenchmark("ghz", 16));
    bool traced = false;
    for (const PassTiming &t : result.passTrace)
        traced = traced || t.pass == "schedule-lint";
    EXPECT_TRUE(traced);
}

TEST(LintPass, LintLevelFoldsIntoConfigDigest)
{
    MusstiConfig a, b;
    b.lintLevel = 2;
    EXPECT_NE(MusstiCompiler(a).configDigest(),
              MusstiCompiler(b).configDigest());
}

} // namespace
} // namespace mussti
