/**
 * @file
 * Tests for the extended workload families (Ising, QV, W-state,
 * surface-code cycles) and their end-to-end compilation.
 */
#include <set>

#include <gtest/gtest.h>

#include "core/compiler.h"
#include "sim/validator.h"
#include "workloads/workloads.h"

namespace mussti {
namespace {

TEST(Ising, EvenOddBondStructure)
{
    const Circuit qc = makeIsing(16, 2);
    // ZZ terms: (n-1) bonds per step, 2 CX per bond.
    EXPECT_EQ(qc.twoQubitCount(), 2 * 15 * 2);
    for (const Gate &g : qc.gates()) {
        if (g.twoQubit()) {
            EXPECT_EQ(std::abs(g.q0 - g.q1), 1);
        }
    }
}

TEST(Ising, DeterministicAndSized)
{
    EXPECT_EQ(makeIsing(32, 4), makeIsing(32, 4));
    EXPECT_EQ(makeIsing(32, 4).numQubits(), 32);
}

TEST(QuantumVolume, SquareShape)
{
    const Circuit qc = makeQuantumVolume(16);
    // depth = n layers, floor(n/2) blocks each, 3 CX per block.
    EXPECT_EQ(qc.twoQubitCount(), 16 * 8 * 3);
}

TEST(QuantumVolume, EachLayerPairsQubitsOnce)
{
    const Circuit qc = makeQuantumVolume(12, 3, 5);
    // Between measure-free layers, every qubit appears in at most one
    // SU(4) block: scan blocks of 3 consecutive CX on a fixed pair.
    std::set<std::pair<int, int>> pairs;
    int cx_seen = 0;
    for (const Gate &g : qc.gates()) {
        if (!g.twoQubit())
            continue;
        const auto key = std::minmax(g.q0, g.q1);
        pairs.insert({key.first, key.second});
        ++cx_seen;
    }
    EXPECT_EQ(cx_seen % 3, 0);
}

TEST(WState, LinearCascade)
{
    const Circuit qc = makeWState(16);
    EXPECT_EQ(qc.numQubits(), 16);
    // Each cascade stage: CZ + CX on neighbours.
    EXPECT_EQ(qc.twoQubitCount(), 2 * 15);
    for (const Gate &g : qc.gates()) {
        if (g.twoQubit()) {
            EXPECT_EQ(std::abs(g.q0 - g.q1), 1);
        }
    }
}

TEST(SurfaceCode, QubitBudget)
{
    for (int d : {3, 5, 7}) {
        const Circuit qc = makeSurfaceCodeCycle(d);
        EXPECT_EQ(qc.numQubits(), 2 * d * d - 1) << "d=" << d;
    }
}

TEST(SurfaceCode, StabilizerWeightBudget)
{
    // One round of a distance-d rotated code applies (d-1)^2 weight-4
    // and 2(d-1) weight-2 stabilizers: total CX count is fixed.
    const int d = 5;
    const Circuit qc = makeSurfaceCodeCycle(d, 1);
    const int expected = 4 * (d - 1) * (d - 1) + 2 * 2 * (d - 1);
    EXPECT_EQ(qc.twoQubitCount(), expected);
}

TEST(SurfaceCode, RoundsScaleLinearly)
{
    const Circuit one = makeSurfaceCodeCycle(3, 1);
    const Circuit three = makeSurfaceCodeCycle(3, 3);
    EXPECT_EQ(three.twoQubitCount(), 3 * one.twoQubitCount());
}

TEST(SurfaceCode, RejectsEvenDistance)
{
    EXPECT_THROW(makeSurfaceCodeCycle(4), std::runtime_error);
    EXPECT_THROW(makeSurfaceCodeCycle(1), std::runtime_error);
}

TEST(ExtraFamilies, RegistryLookups)
{
    EXPECT_GT(makeBenchmark("ising", 32).twoQubitCount(), 0);
    EXPECT_GT(makeBenchmark("qv", 16).twoQubitCount(), 0);
    EXPECT_GT(makeBenchmark("wstate", 16).twoQubitCount(), 0);
}

/** End-to-end: the new families compile to valid schedules. */
class ExtraWorkloadCompileTest
    : public ::testing::TestWithParam<const char *>
{};

TEST_P(ExtraWorkloadCompileTest, CompilesValidly)
{
    const Circuit qc = makeBenchmark(GetParam(), 48);
    MusstiConfig config;
    const auto result = MusstiCompiler(config).compile(qc);
    const EmlDevice device(config.device, qc.numQubits());
    const auto report = ScheduleValidator(device.zoneInfos())
                            .validate(result.schedule, result.lowered);
    ASSERT_TRUE(report) << GetParam() << ": " << report.firstError;
}

INSTANTIATE_TEST_SUITE_P(NewFamilies, ExtraWorkloadCompileTest,
                         ::testing::Values("ising", "qv", "wstate"));

TEST(SurfaceCode, CompilesOnMultiModuleDevice)
{
    // d=7: 97 qubits -> 4 modules; the QEC-outlook scenario.
    const Circuit qc = makeSurfaceCodeCycle(7, 2);
    MusstiConfig config;
    const auto result = MusstiCompiler(config).compile(qc);
    const EmlDevice device(config.device, qc.numQubits());
    EXPECT_GE(device.numModules(), 3);
    const auto report = ScheduleValidator(device.zoneInfos())
                            .validate(result.schedule, result.lowered);
    ASSERT_TRUE(report) << report.firstError;
}

} // namespace
} // namespace mussti
