/**
 * @file
 * Cross-module integration tests: the paper's headline claims as
 * executable assertions. MUSS-TI on EML-QCCD must beat the grid
 * baselines on shuttle count across the evaluation suites, execution
 * time must track shuttles, and the ablation/capacity/optimality
 * relationships of sections 5.3-5.9 must hold in direction.
 */
#include <chrono>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/dai.h"
#include "baselines/murali.h"
#include "common/stats.h"
#include "core/compiler.h"
#include "sim/validator.h"
#include "workloads/workloads.h"

namespace mussti {
namespace {

CompileResult
mussti(const Circuit &qc, MusstiConfig config = {})
{
    return MusstiCompiler(config).compile(qc);
}

TEST(Integration, MusstiBeatsBaselinesOnSmallSuiteAverage)
{
    const PhysicalParams params;
    std::vector<double> ours, murali_counts, dai_counts;
    for (const auto &spec : smallScaleSuite()) {
        const Circuit qc = makeBenchmark(spec.family, spec.numQubits);
        ours.push_back(mussti(qc).metrics.shuttleCount);
        MuraliCompiler murali(GridConfig{2, 2, 12}, params);
        murali_counts.push_back(murali.compile(qc).metrics.shuttleCount);
        DaiCompiler dai(GridConfig{2, 2, 12}, params);
        dai_counts.push_back(dai.compile(qc).metrics.shuttleCount);
    }
    // Paper: 41.74% average reduction small-scale; require a clear win.
    EXPECT_GT(averageReductionPercent(murali_counts, ours), 25.0);
    EXPECT_GT(averageReductionPercent(dai_counts, ours), 15.0);
}

TEST(Integration, MusstiBeatsBaselinesOnMediumSuite)
{
    const PhysicalParams params;
    std::vector<double> ours, murali_counts;
    for (const auto &spec : mediumScaleSuite()) {
        const Circuit qc = makeBenchmark(spec.family, spec.numQubits);
        ours.push_back(mussti(qc).metrics.shuttleCount);
        MuraliCompiler murali(GridConfig{3, 4, 16}, params);
        murali_counts.push_back(murali.compile(qc).metrics.shuttleCount);
    }
    // Paper: 73.38% medium-scale reduction; require a strong win.
    EXPECT_GT(averageReductionPercent(murali_counts, ours), 40.0);
}

TEST(Integration, ExecutionTimeTracksShuttleReduction)
{
    const PhysicalParams params;
    for (const char *family : {"adder", "sqrt"}) {
        const Circuit qc = makeBenchmark(family, 32);
        const auto ours = mussti(qc);
        MuraliCompiler murali(GridConfig{2, 2, 12}, params);
        const auto base = murali.compile(qc);
        if (ours.metrics.shuttleCount < base.metrics.shuttleCount) {
            EXPECT_LT(ours.metrics.executionTimeUs,
                      base.metrics.executionTimeUs)
                << family;
        }
    }
}

TEST(Integration, FidelityBeatsBaselineOnCommunicationHeavyApps)
{
    const PhysicalParams params;
    const Circuit qc = makeSqrt(30);
    const auto ours = mussti(qc);
    MuraliCompiler murali(GridConfig{2, 2, 12}, params);
    const auto base = murali.compile(qc);
    EXPECT_GT(ours.metrics.lnFidelity, base.metrics.lnFidelity);
}

TEST(Integration, SabrePlusSwapInsertIsBestAblationArmOnAggregate)
{
    // Fig 8 directionality: across the medium suite, the combined
    // configuration must not lose to the trivial baseline in aggregate
    // log-fidelity (per-app noise of a few percent is expected; the
    // paper's claim is the overall trend).
    MusstiConfig trivial;
    trivial.mapping = MappingKind::Trivial;
    trivial.enableSwapInsertion = false;

    MusstiConfig combined;
    combined.mapping = MappingKind::Sabre;
    combined.enableSwapInsertion = true;

    double base_ln = 0.0, best_ln = 0.0;
    for (const auto &spec : mediumScaleSuite()) {
        const Circuit qc = makeBenchmark(spec.family, spec.numQubits);
        base_ln += mussti(qc, trivial).metrics.lnFidelity;
        best_ln += mussti(qc, combined).metrics.lnFidelity;
    }
    EXPECT_GE(best_ln, base_ln);
}

TEST(Integration, PerfectRegimesUpperBoundRealFidelity)
{
    // Section 5.9: perfect-gate and perfect-shuttle fidelities bound the
    // real configuration from above.
    const Circuit qc = makeAdder(128);
    const MusstiConfig config;

    PhysicalParams real_params;
    PhysicalParams perfect_gate;
    perfect_gate.perfectGate = true;
    PhysicalParams perfect_shuttle;
    perfect_shuttle.perfectShuttle = true;

    const auto real = MusstiCompiler(config, real_params).compile(qc);
    const auto pg = MusstiCompiler(config, perfect_gate).compile(qc);
    const auto ps = MusstiCompiler(config, perfect_shuttle).compile(qc);

    EXPECT_GE(pg.metrics.lnFidelity, real.metrics.lnFidelity);
    EXPECT_GE(ps.metrics.lnFidelity, real.metrics.lnFidelity);
}

TEST(Integration, TwoOpticalZonesHelpLargeApps)
{
    // Section 5.8 / Fig 12: two entanglement zones improve *fidelity*
    // on most large communication-heavy apps by spreading fiber-port
    // heat (shuttle counts may tick up slightly; the paper's claim is
    // about reliability).
    int wins = 0;
    const std::vector<BenchmarkSpec> apps = {
        {"sqrt", 299}, {"ran", 256}, {"sc", 274}};
    for (const auto &spec : apps) {
        const Circuit qc = makeBenchmark(spec.family, spec.numQubits);
        MusstiConfig one_zone;
        MusstiConfig two_zones;
        two_zones.device.numOpticalZones = 2;
        const auto one = mussti(qc, one_zone);
        const auto two = mussti(qc, two_zones);
        wins += two.metrics.lnFidelity > one.metrics.lnFidelity;
    }
    EXPECT_GE(wins, 2);
}

TEST(Integration, CompilationTimeScalesPolynomially)
{
    // Section 5.6: compilation stays tractable as size grows. Guard the
    // asymptotics with a loose budget: the full medium suite compiles
    // in seconds.
    const auto t0 = std::chrono::steady_clock::now();
    for (const auto &spec : mediumScaleSuite())
        mussti(makeBenchmark(spec.family, spec.numQubits));
    const double sec = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - t0).count();
    EXPECT_LT(sec, 30.0);
}

TEST(Integration, LargeSuiteEndToEndValid)
{
    MusstiConfig config;
    for (const auto &spec : largeScaleSuite()) {
        const Circuit qc = makeBenchmark(spec.family, spec.numQubits);
        const auto result = mussti(qc, config);
        const EmlDevice device(config.device, qc.numQubits());
        const auto report = ScheduleValidator(device.zoneInfos())
                                .validate(result.schedule, result.lowered);
        ASSERT_TRUE(report) << spec.label() << ": " << report.firstError;
    }
}

TEST(Integration, TrapCapacitySweepStaysValid)
{
    // Fig 7's sweep must be runnable: every capacity in 12..20 yields a
    // valid schedule for a medium app.
    const Circuit qc = makeBv(128);
    for (int capacity : {12, 14, 16, 18, 20}) {
        MusstiConfig config;
        config.device.trapCapacity = capacity;
        const auto result = mussti(qc, config);
        const EmlDevice device(config.device, qc.numQubits());
        const auto report = ScheduleValidator(device.zoneInfos())
                                .validate(result.schedule, result.lowered);
        ASSERT_TRUE(report) << "capacity " << capacity << ": "
                            << report.firstError;
    }
}

} // namespace
} // namespace mussti
