/**
 * @file
 * End-to-end tests of the serving stack (src/serve/): protocol
 * round-trips, a real daemon on a loopback ephemeral port, the
 * determinism contract (server fingerprint == local compile), the
 * persistent disk tier across a server restart, structured error
 * responses, deadline enforcement under load, fair admission keeping a
 * sweep from starving an interactive client, and graceful drain.
 */
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "baselines/backend_factory.h"
#include "common/logging.h"
#include "core/pipeline.h"
#include "serve/compile_client.h"
#include "serve/compile_server.h"
#include "serve/protocol.h"
#include "workloads/workloads.h"

namespace mussti {
namespace {

namespace fs = std::filesystem;

/** Self-deleting scratch directory for disk-tier tests. */
class ScratchDir
{
  public:
    ScratchDir()
    {
        static int counter = 0;
        path_ = fs::temp_directory_path() /
                ("mussti_serve_test_" + std::to_string(::getpid()) +
                 "_" + std::to_string(counter++));
        fs::create_directories(path_);
    }
    ~ScratchDir()
    {
        std::error_code ignored;
        fs::remove_all(path_, ignored);
    }
    std::string str() const { return path_.string(); }

  private:
    fs::path path_;
};

/** The stats counter `key`, or -1 when the response lacks it. */
long long
counter(const ServeResponse &stats, const std::string &key)
{
    for (const auto &entry : stats.stats)
        if (entry.first == key)
            return entry.second;
    return -1;
}

ServeRequest
familyRequest(const std::string &family, int qubits,
              const std::string &client = "test")
{
    ServeRequest request;
    request.type = ServeRequestType::Compile;
    request.client = client;
    request.family = family;
    request.qubits = qubits;
    return request;
}

TEST(ServeProtocol, RequestRoundTripsEveryField)
{
    ServeRequest request;
    request.type = ServeRequestType::Compile;
    request.id = 42;
    request.client = "sweeper";
    request.family = "qaoa";
    request.qubits = 96;
    request.device = "eml:modules=4,cap=32";
    request.backend = "mussti";
    request.hasSeed = true;
    request.seed = (1ull << 63) + 12345; // past 2^53: must survive JSON
    request.deadlineMs = 2500;

    ServeRequest decoded;
    ASSERT_TRUE(decodeRequest(encodeRequest(request), decoded));
    EXPECT_EQ(decoded.id, request.id);
    EXPECT_EQ(decoded.client, request.client);
    EXPECT_EQ(decoded.family, request.family);
    EXPECT_EQ(decoded.qubits, request.qubits);
    EXPECT_EQ(decoded.device, request.device);
    EXPECT_EQ(decoded.backend, request.backend);
    EXPECT_TRUE(decoded.hasSeed);
    EXPECT_EQ(decoded.seed, request.seed);
    EXPECT_EQ(decoded.deadlineMs, request.deadlineMs);

    ServeRequest qasm;
    qasm.qasm = "OPENQASM 2.0;\nqreg q[2];\ncx q[0],q[1];\n";
    qasm.name = "bell";
    ASSERT_TRUE(decodeRequest(encodeRequest(qasm), decoded));
    EXPECT_EQ(decoded.qasm, qasm.qasm);
    EXPECT_EQ(decoded.name, "bell");

    ServeRequest stats;
    stats.type = ServeRequestType::Stats;
    stats.id = 7;
    ASSERT_TRUE(decodeRequest(encodeRequest(stats), decoded));
    EXPECT_EQ(decoded.type, ServeRequestType::Stats);
    EXPECT_EQ(decoded.id, 7u);
}

TEST(ServeProtocol, ResponseRoundTripsBothArms)
{
    ServeResponse success;
    success.id = 9;
    success.ok = true;
    success.attempts = 3;
    success.fingerprint = 0xdeadbeefcafef00dull; // > 2^53 as well
    success.executionTimeUs = 123.5;
    success.log10Fidelity = -0.25;
    success.shuttles = 17;
    success.swapInsertions = 4;

    ServeResponse decoded;
    ASSERT_TRUE(decodeResponse(encodeResponse(success), decoded));
    EXPECT_TRUE(decoded.ok);
    EXPECT_EQ(decoded.id, 9u);
    EXPECT_EQ(decoded.attempts, 3);
    EXPECT_EQ(decoded.fingerprint, success.fingerprint);
    EXPECT_DOUBLE_EQ(decoded.executionTimeUs, 123.5);
    EXPECT_DOUBLE_EQ(decoded.log10Fidelity, -0.25);
    EXPECT_EQ(decoded.shuttles, 17);
    EXPECT_EQ(decoded.swapInsertions, 4);

    ServeResponse failure;
    failure.id = 10;
    failure.ok = false;
    failure.error = {"InvalidInput", "serve.no-circuit", "no circuit"};
    ASSERT_TRUE(decodeResponse(encodeResponse(failure), decoded));
    EXPECT_FALSE(decoded.ok);
    EXPECT_EQ(decoded.error.category, "InvalidInput");
    EXPECT_EQ(decoded.error.code, "serve.no-circuit");
    EXPECT_EQ(decoded.error.message, "no circuit");

    ServeResponse stats;
    stats.id = 11;
    stats.ok = true;
    stats.stats = {{"jobs_executed", 5}, {"cache_disk_hits", 2}};
    ASSERT_TRUE(decodeResponse(encodeResponse(stats), decoded));
    ASSERT_EQ(decoded.stats.size(), 2u);
    EXPECT_EQ(decoded.stats[0].first, "jobs_executed");
    EXPECT_EQ(decoded.stats[0].second, 5);
    EXPECT_EQ(decoded.stats[1].second, 2);
}

TEST(ServeProtocol, MalformedPayloadsAreRejectedNotFatal)
{
    const std::vector<std::string> garbage = {
        "",
        "not json",
        "{",
        "[1,2,3]",
        "{\"type\":\"compile\"",               // truncated
        "{\"type\":\"compile\",\"id\":\"x\"}", // id not numeric
    };
    for (const std::string &text : garbage) {
        ServeRequest request;
        EXPECT_FALSE(decodeRequest(text, request)) << text;
        ServeResponse response;
        EXPECT_FALSE(decodeResponse(text, response)) << text;
    }
    // Request-specific poison: fields a response decoder would merely
    // skip as unknown keys.
    const std::vector<std::string> badRequests = {
        "{\"type\":\"teleport\",\"id\":1}", // unknown type
        "{\"type\":\"compile\",\"id\":1,\"seed\":\"12z\"}",
    };
    for (const std::string &text : badRequests) {
        ServeRequest request;
        EXPECT_FALSE(decodeRequest(text, request)) << text;
    }

    // Unknown keys are skipped, not fatal: forward compatibility.
    ServeRequest request;
    EXPECT_TRUE(decodeRequest(
        "{\"type\":\"compile\",\"id\":3,\"family\":\"ghz\","
        "\"qubits\":8,\"future_knob\":{\"a\":[1,2]}}",
        request));
    EXPECT_EQ(request.family, "ghz");
    EXPECT_EQ(request.qubits, 8);
}

TEST(Serve, CompileMatchesALocalCompileBitForBit)
{
    CompileServerConfig config;
    config.port = 0;
    config.numThreads = 2;
    CompileServer server(config);
    ASSERT_TRUE(server.start());

    CompileClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", server.port()));

    const ServeResponse response =
        client.await(client.send(familyRequest("qft", 16)));
    ASSERT_TRUE(response.ok)
        << response.error.code << ": " << response.error.message;

    // The determinism contract: a daemon compile is bit-identical to a
    // local one — same fingerprint, same headline metrics.
    const CompileResult local =
        makeMusstiBackend()->compile(makeBenchmark("qft", 16));
    EXPECT_EQ(response.fingerprint, resultFingerprint(local));
    EXPECT_DOUBLE_EQ(response.executionTimeUs,
                     local.metrics.executionTimeUs);
    EXPECT_DOUBLE_EQ(response.log10Fidelity,
                     local.metrics.log10Fidelity());
    EXPECT_EQ(response.shuttles, local.metrics.shuttleCount);

    // Same request again: served from the result cache, same answer.
    const ServeResponse again =
        client.await(client.send(familyRequest("qft", 16)));
    ASSERT_TRUE(again.ok);
    EXPECT_EQ(again.fingerprint, response.fingerprint);

    const ServeResponse stats = client.stats();
    ASSERT_TRUE(stats.ok);
    EXPECT_EQ(counter(stats, "jobs_executed"), 1);
    EXPECT_GE(counter(stats, "cache_hits"), 1);
    EXPECT_GE(counter(stats, "admission_completed"), 2);

    server.stop();
}

TEST(Serve, SeededCompilesMatchTheSeededLocalPath)
{
    CompileServerConfig config;
    config.port = 0;
    CompileServer server(config);
    ASSERT_TRUE(server.start());

    CompileClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", server.port()));

    ServeRequest request = familyRequest("qaoa", 24);
    request.hasSeed = true;
    request.seed = (1ull << 60) + 99; // u64-clean through the wire
    const ServeResponse response = client.await(client.send(request));
    ASSERT_TRUE(response.ok)
        << response.error.code << ": " << response.error.message;

    const CompileResult local = makeMusstiBackend()->compileSeeded(
        makeBenchmark("qaoa", 24), request.seed);
    EXPECT_EQ(response.fingerprint, resultFingerprint(local));

    server.stop();
}

TEST(Serve, WarmRestartServesFromThePersistentTier)
{
    ScratchDir dir;
    std::uint64_t cold = 0;
    {
        CompileServerConfig config;
        config.port = 0;
        config.diskCachePath = dir.str();
        CompileServer server(config);
        ASSERT_TRUE(server.start());
        CompileClient client;
        ASSERT_TRUE(client.connect("127.0.0.1", server.port()));
        const ServeResponse response =
            client.await(client.send(familyRequest("ghz", 20)));
        ASSERT_TRUE(response.ok);
        cold = response.fingerprint;
        server.stop();
    }

    // A fresh daemon on the same cache directory answers bit-identically
    // WITHOUT compiling: the disk tier survives the process.
    CompileServerConfig config;
    config.port = 0;
    config.diskCachePath = dir.str();
    CompileServer server(config);
    ASSERT_TRUE(server.start());
    CompileClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", server.port()));
    const ServeResponse warm =
        client.await(client.send(familyRequest("ghz", 20)));
    ASSERT_TRUE(warm.ok);
    EXPECT_EQ(warm.fingerprint, cold);

    const ServeResponse stats = client.stats();
    ASSERT_TRUE(stats.ok);
    EXPECT_EQ(counter(stats, "jobs_executed"), 0);
    EXPECT_GE(counter(stats, "cache_disk_hits"), 1);

    server.stop();
}

TEST(Serve, StructuredErrorsComeBackOverTheWire)
{
    ScopedFatalSilence quiet(true);
    CompileServerConfig config;
    config.port = 0;
    CompileServer server(config);
    ASSERT_TRUE(server.start());

    CompileClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", server.port()));

    // Unknown benchmark family -> InvalidInput from the workload layer.
    const ServeResponse family =
        client.await(client.send(familyRequest("warpdrive", 8)));
    EXPECT_FALSE(family.ok);
    EXPECT_EQ(family.error.category, "InvalidInput");

    // No circuit at all.
    ServeRequest empty;
    empty.client = "test";
    const ServeResponse none = client.await(client.send(empty));
    EXPECT_FALSE(none.ok);
    EXPECT_EQ(none.error.code, "serve.no-circuit");

    // MUSS-TI backend pointed at a grid device spec.
    ServeRequest mismatch = familyRequest("ghz", 8);
    mismatch.device = "grid:8x8";
    mismatch.backend = "mussti";
    const ServeResponse wrong = client.await(client.send(mismatch));
    EXPECT_FALSE(wrong.ok);
    EXPECT_EQ(wrong.error.code, "serve.device-mismatch");

    // The session survives every bad request above.
    const ServeResponse okStill =
        client.await(client.send(familyRequest("ghz", 8)));
    EXPECT_TRUE(okStill.ok);

    server.stop();
}

TEST(Serve, ABlownDeadlineIsAStructuredTimeout)
{
    CompileServerConfig config;
    config.port = 0;
    config.numThreads = 1;
    CompileServer server(config);
    ASSERT_TRUE(server.start());

    CompileClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", server.port()));

    // Park the single worker, then queue a 1 ms-deadline job behind it:
    // by the time a worker frees up the deadline is long gone.
    const std::uint64_t blocker =
        client.send(familyRequest("qv", 64, "blocker"));
    ServeRequest urgent = familyRequest("ghz", 8, "urgent");
    urgent.deadlineMs = 1;
    const ServeResponse late = client.await(client.send(urgent));
    EXPECT_FALSE(late.ok);
    EXPECT_EQ(late.error.category, "Timeout");
    EXPECT_TRUE(client.await(blocker).ok);

    server.stop();
}

TEST(Serve, ASweepCannotStarveAnInteractiveClient)
{
    // Two workers; the sweep's in-flight budget is 1, so however deep
    // its queue, one worker always remains for the interactive client —
    // the admission lever the fairness story hangs on.
    CompileServerConfig config;
    config.port = 0;
    config.numThreads = 2;
    config.cacheCapacity = 0; // every job pays full compile cost
    config.admission.maxInFlightPerClient = 1;
    CompileServer server(config);
    ASSERT_TRUE(server.start());

    CompileClient sweep;
    ASSERT_TRUE(sweep.connect("127.0.0.1", server.port()));
    std::vector<std::uint64_t> ids;
    for (int i = 0; i < 8; ++i) {
        ServeRequest request = familyRequest("qft", 24, "sweep");
        request.hasSeed = true;
        request.seed = 1000 + i;
        ids.push_back(sweep.send(request));
    }

    CompileClient interactive;
    ASSERT_TRUE(interactive.connect("127.0.0.1", server.port()));
    ServeRequest request = familyRequest("ghz", 8, "interactive");
    request.deadlineMs = 10000;
    const auto t0 = std::chrono::steady_clock::now();
    const ServeResponse response =
        interactive.await(interactive.send(request));
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - t0);

    ASSERT_TRUE(response.ok)
        << response.error.code << ": " << response.error.message;
    EXPECT_LT(elapsed.count(), 10000);

    for (const std::uint64_t id : ids)
        EXPECT_TRUE(sweep.await(id).ok);

    server.stop();
}

TEST(Serve, GracefulStopStreamsCancelledForQueuedWork)
{
    ScopedFatalSilence quiet(true);
    CompileServerConfig config;
    config.port = 0;
    config.numThreads = 1;
    config.admission.maxInFlightPerClient = 1;
    CompileServer server(config);
    ASSERT_TRUE(server.start());

    CompileClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", server.port()));
    std::vector<std::uint64_t> ids;
    ids.push_back(client.send(familyRequest("qv", 64)));
    for (int i = 0; i < 4; ++i) {
        ServeRequest request = familyRequest("ghz", 8);
        request.hasSeed = true;
        request.seed = 2000 + i;
        ids.push_back(client.send(request));
    }
    // Let the reader thread ingest the frames, then drain.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    server.stop();

    // Every job resolves exactly once: finished in-flight work is ok,
    // still-queued work streams a structured Cancelled — and even a
    // torn connection degrades to a synthetic Cancelled, never a hang.
    int ok = 0, cancelled = 0;
    for (const std::uint64_t id : ids) {
        const ServeResponse response = client.await(id);
        if (response.ok) {
            ++ok;
        } else {
            EXPECT_EQ(response.error.category, "Cancelled")
                << response.error.code;
            ++cancelled;
        }
    }
    EXPECT_EQ(ok + cancelled, 5);
    EXPECT_GE(ok, 1); // the in-flight blocker was never abandoned
}

} // namespace
} // namespace mussti
