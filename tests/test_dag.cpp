/**
 * @file
 * Tests for the dependency DAG: construction, frontier semantics,
 * completion, 1q satellite attachment, and the k-layer window.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "dag/dag.h"
#include "workloads/workloads.h"

namespace mussti {
namespace {

TEST(Dag, CountsOnlyTwoQubitGates)
{
    Circuit qc(3);
    qc.h(0);
    qc.cx(0, 1);
    qc.rz(1, 0.3);
    qc.cx(1, 2);
    const DependencyDag dag(qc);
    EXPECT_EQ(dag.size(), 2);
    EXPECT_EQ(dag.remaining(), 2);
}

TEST(Dag, FrontierIsIndependentGates)
{
    Circuit qc(4);
    qc.cx(0, 1);
    qc.cx(2, 3);
    qc.cx(1, 2); // depends on both
    DependencyDag dag(qc);
    EXPECT_EQ(dag.frontier().size(), 2u);
    EXPECT_TRUE(dag.isReady(0));
    EXPECT_TRUE(dag.isReady(1));
    EXPECT_FALSE(dag.isReady(2));
}

TEST(Dag, CompletionUnlocksSuccessors)
{
    Circuit qc(4);
    qc.cx(0, 1);
    qc.cx(2, 3);
    qc.cx(1, 2);
    DependencyDag dag(qc);
    dag.complete(0);
    EXPECT_FALSE(dag.isReady(2));
    dag.complete(1);
    EXPECT_TRUE(dag.isReady(2));
    dag.complete(2);
    EXPECT_TRUE(dag.empty());
}

TEST(Dag, CompletingNonFrontierPanics)
{
    Circuit qc(3);
    qc.cx(0, 1);
    qc.cx(1, 2);
    DependencyDag dag(qc);
    EXPECT_THROW(dag.complete(1), std::logic_error);
}

TEST(Dag, DoubleCompletionPanics)
{
    Circuit qc(2);
    qc.cx(0, 1);
    DependencyDag dag(qc);
    dag.complete(0);
    EXPECT_THROW(dag.complete(0), std::logic_error);
}

TEST(Dag, SharedPredecessorSingleEdge)
{
    // Both operands of the second gate come from the same predecessor;
    // the edge must be deduplicated so pendingPreds is 1.
    Circuit qc(2);
    qc.cx(0, 1);
    qc.cx(1, 0);
    DependencyDag dag(qc);
    dag.complete(0);
    EXPECT_TRUE(dag.isReady(1));
}

TEST(Dag, LeadingOneQubitGatesAttach)
{
    Circuit qc(2);
    qc.h(0);
    qc.rz(1, 0.1);
    qc.cx(0, 1);
    qc.h(1);
    DependencyDag dag(qc);
    ASSERT_EQ(dag.size(), 1);
    EXPECT_EQ(dag.leading1q(0).size(), 2);
    EXPECT_EQ(dag.trailing1q().size(), 1u);
}

TEST(Dag, BarriersIgnored)
{
    Circuit qc(2);
    qc.add(Gate(GateKind::Barrier, -1));
    qc.cx(0, 1);
    const DependencyDag dag(qc);
    EXPECT_EQ(dag.size(), 1);
}

TEST(Dag, FrontierSortedByCircuitIndex)
{
    Circuit qc(6);
    qc.cx(4, 5);
    qc.cx(0, 1);
    qc.cx(2, 3);
    DependencyDag dag(qc);
    const auto &frontier = dag.frontier();
    ASSERT_EQ(frontier.size(), 3u);
    EXPECT_LT(dag.node(frontier[0]).circuitIndex,
              dag.node(frontier[1]).circuitIndex);
    EXPECT_LT(dag.node(frontier[1]).circuitIndex,
              dag.node(frontier[2]).circuitIndex);
}

TEST(Dag, FrontLayersRespectDependencies)
{
    Circuit qc(4);
    qc.cx(0, 1); // layer 0
    qc.cx(2, 3); // layer 0
    qc.cx(1, 2); // layer 1
    qc.cx(0, 1); // layer 2 (needs gate 0 and gate 2's completion? no:
                 // depends on gates 0 and 2 via qubits 0 and 1)
    const DependencyDag dag(qc);
    const auto layers = dag.frontLayers(8);
    ASSERT_GE(layers.size(), 2u);
    EXPECT_EQ(layers[0].size(), 2u);
    EXPECT_EQ(layers[1].size(), 1u);
}

TEST(Dag, FrontLayersNonDestructive)
{
    const Circuit qc = makeGhz(8);
    DependencyDag dag(qc);
    const int before = dag.remaining();
    (void)dag.frontLayers(4);
    EXPECT_EQ(dag.remaining(), before);
    EXPECT_EQ(dag.frontier().size(), 1u);
}

TEST(Dag, FrontLayersBoundedByK)
{
    const Circuit qc = makeGhz(32); // strictly serial chain
    const DependencyDag dag(qc);
    EXPECT_EQ(dag.frontLayers(5).size(), 5u);
    EXPECT_EQ(dag.frontLayers(0).size(), 0u);
}

TEST(Dag, GhzChainIsSerial)
{
    const Circuit qc = makeGhz(16);
    DependencyDag dag(qc);
    int retired = 0;
    while (!dag.empty()) {
        ASSERT_EQ(dag.frontier().size(), 1u);
        dag.complete(dag.frontier().front());
        ++retired;
    }
    EXPECT_EQ(retired, 15);
}

TEST(Dag, FullDrainOfWorkload)
{
    const Circuit qc = makeAdder(32);
    DependencyDag dag(qc);
    int retired = 0;
    while (!dag.empty()) {
        dag.complete(dag.frontier().front());
        ++retired;
    }
    EXPECT_EQ(retired, qc.twoQubitCount());
}

/**
 * Reference nextUse computation the incremental window must match: the
 * historical full recompute from a frontLayers peel.
 */
std::vector<int>
referenceNextUse(const DependencyDag &dag, int num_qubits, int horizon)
{
    std::vector<int> next_use(num_qubits, horizon);
    const auto layers = dag.frontLayers(horizon);
    for (int depth = static_cast<int>(layers.size()) - 1; depth >= 0;
         --depth) {
        for (DagNodeId id : layers[depth]) {
            next_use[dag.node(id).gate.q0] = depth;
            next_use[dag.node(id).gate.q1] = depth;
        }
    }
    return next_use;
}

TEST(Dag, IncrementalNextUseMatchesReferenceWhileDraining)
{
    // Drain random DAGs from varying frontier positions; after every
    // retirement the incrementally maintained table must equal the full
    // recompute. Also checked at a small horizon so clamping and the
    // idle sentinel are exercised.
    for (const int horizon : {DependencyDag::kDefaultWindowHorizon, 4}) {
        const Circuit qc = makeRandomCircuit(18, 160, 7);
        DependencyDag dag(qc, horizon);
        EXPECT_EQ(dag.windowHorizon(), horizon);
        EXPECT_EQ(dag.nextUse(),
                  referenceNextUse(dag, qc.numQubits(), horizon));
        std::size_t pick = 0;
        while (!dag.empty()) {
            const auto &frontier = dag.frontier();
            dag.complete(frontier[pick % frontier.size()]);
            pick += 3;
            ASSERT_EQ(dag.nextUse(),
                      referenceNextUse(dag, qc.numQubits(), horizon))
                << "divergence after " << pick / 3 << " retirements at "
                << "horizon " << horizon;
        }
        for (int v : dag.nextUse())
            EXPECT_EQ(v, horizon); // fully drained -> all idle
    }
}

TEST(Dag, IncrementalNextUseMatchesReferenceAfterBursts)
{
    // Same equivalence, but reading only every few retirements, so the
    // batched flush folds multi-retirement bursts in one wave.
    const Circuit qc = makeAdder(24);
    DependencyDag dag(qc);
    int retired = 0;
    while (!dag.empty()) {
        dag.complete(dag.frontier().front());
        if (++retired % 5 == 0) {
            ASSERT_EQ(dag.nextUse(),
                      referenceNextUse(dag, qc.numQubits(),
                                       dag.windowHorizon()));
        }
    }
}

TEST(Dag, WindowLayersMatchFrontLayersAsSets)
{
    // windowLayer(d) returns layer d of a peel, unordered.
    const Circuit qc = makeRandomCircuit(16, 120, 5);
    DependencyDag dag(qc);
    std::size_t pick = 0;
    for (int step = 0; step < 40 && !dag.empty(); ++step) {
        const int k = 6;
        const auto layers = dag.frontLayers(k);
        for (int d = 0; d < k; ++d) {
            std::vector<DagNodeId> window = dag.windowLayer(d);
            std::sort(window.begin(), window.end());
            const std::vector<DagNodeId> expected =
                d < static_cast<int>(layers.size())
                    ? layers[d]
                    : std::vector<DagNodeId>{};
            ASSERT_EQ(window, expected) << "layer " << d << " at step "
                                        << step;
        }
        const auto &frontier = dag.frontier();
        dag.complete(frontier[pick % frontier.size()]);
        ++pick;
    }
}

TEST(Dag, WindowDepthZeroIsTheFrontier)
{
    const Circuit qc = makeAdder(16);
    DependencyDag dag(qc);
    while (!dag.empty()) {
        for (DagNodeId id : dag.frontier())
            EXPECT_EQ(dag.windowDepth(id), 0);
        std::vector<DagNodeId> layer0 = dag.windowLayer(0);
        std::sort(layer0.begin(), layer0.end());
        EXPECT_EQ(layer0, dag.frontier());
        dag.complete(dag.frontier().front());
    }
}

TEST(Dag, QubitChainsArePerQubitAndOrdered)
{
    Circuit qc(4);
    qc.cx(0, 1);
    qc.cx(1, 2);
    qc.cx(2, 3);
    qc.cx(0, 1);
    DependencyDag dag(qc);
    ASSERT_EQ(dag.qubitChain(1).size(), 3);
    const QubitChainView chain = dag.qubitChain(1);
    EXPECT_EQ(std::vector<DagNodeId>(chain.begin(), chain.end()),
              (std::vector<DagNodeId>{0, 1, 3}));
    EXPECT_EQ(dag.qubitChainHead(1), 0);
    dag.complete(0);
    EXPECT_EQ(dag.qubitChainHead(1), 1);
    // nextUse follows the chain head's depth.
    EXPECT_EQ(dag.nextUse()[1], dag.windowDepth(1));
}

TEST(Dag, RejectsNonPositiveHorizon)
{
    Circuit qc(2);
    qc.cx(0, 1);
    EXPECT_THROW(DependencyDag(qc, 0), std::runtime_error);
    EXPECT_THROW(DependencyDag(qc, -3), std::runtime_error);
}

TEST(Dag, TopologicalInvariantUnderRandomDrain)
{
    // Property: completing always-first-ready nodes never exposes a node
    // before all its predecessors retire. Exercised over a random
    // circuit by draining from varying frontier positions.
    const Circuit qc = makeRandomCircuit(16, 200, 5);
    DependencyDag dag(qc);
    std::vector<bool> done(dag.size(), false);
    std::size_t pick = 0;
    while (!dag.empty()) {
        const auto &frontier = dag.frontier();
        const DagNodeId id = frontier[pick % frontier.size()];
        ++pick;
        // Every predecessor of id must already be done: verify through
        // the succ lists of done nodes.
        done[id] = true;
        dag.complete(id);
    }
    for (DagNodeId id = 0; id < dag.size(); ++id) {
        for (DagNodeId succ : dag.node(id).succs)
            EXPECT_TRUE(done[succ]);
    }
}

} // namespace
} // namespace mussti
