/**
 * @file
 * Tests for the dependency DAG: construction, frontier semantics,
 * completion, 1q satellite attachment, and the k-layer window.
 */
#include <gtest/gtest.h>

#include "dag/dag.h"
#include "workloads/workloads.h"

namespace mussti {
namespace {

TEST(Dag, CountsOnlyTwoQubitGates)
{
    Circuit qc(3);
    qc.h(0);
    qc.cx(0, 1);
    qc.rz(1, 0.3);
    qc.cx(1, 2);
    const DependencyDag dag(qc);
    EXPECT_EQ(dag.size(), 2);
    EXPECT_EQ(dag.remaining(), 2);
}

TEST(Dag, FrontierIsIndependentGates)
{
    Circuit qc(4);
    qc.cx(0, 1);
    qc.cx(2, 3);
    qc.cx(1, 2); // depends on both
    DependencyDag dag(qc);
    EXPECT_EQ(dag.frontier().size(), 2u);
    EXPECT_TRUE(dag.isReady(0));
    EXPECT_TRUE(dag.isReady(1));
    EXPECT_FALSE(dag.isReady(2));
}

TEST(Dag, CompletionUnlocksSuccessors)
{
    Circuit qc(4);
    qc.cx(0, 1);
    qc.cx(2, 3);
    qc.cx(1, 2);
    DependencyDag dag(qc);
    dag.complete(0);
    EXPECT_FALSE(dag.isReady(2));
    dag.complete(1);
    EXPECT_TRUE(dag.isReady(2));
    dag.complete(2);
    EXPECT_TRUE(dag.empty());
}

TEST(Dag, CompletingNonFrontierPanics)
{
    Circuit qc(3);
    qc.cx(0, 1);
    qc.cx(1, 2);
    DependencyDag dag(qc);
    EXPECT_THROW(dag.complete(1), std::logic_error);
}

TEST(Dag, DoubleCompletionPanics)
{
    Circuit qc(2);
    qc.cx(0, 1);
    DependencyDag dag(qc);
    dag.complete(0);
    EXPECT_THROW(dag.complete(0), std::logic_error);
}

TEST(Dag, SharedPredecessorSingleEdge)
{
    // Both operands of the second gate come from the same predecessor;
    // the edge must be deduplicated so pendingPreds is 1.
    Circuit qc(2);
    qc.cx(0, 1);
    qc.cx(1, 0);
    DependencyDag dag(qc);
    dag.complete(0);
    EXPECT_TRUE(dag.isReady(1));
}

TEST(Dag, LeadingOneQubitGatesAttach)
{
    Circuit qc(2);
    qc.h(0);
    qc.rz(1, 0.1);
    qc.cx(0, 1);
    qc.h(1);
    DependencyDag dag(qc);
    ASSERT_EQ(dag.size(), 1);
    EXPECT_EQ(dag.node(0).leading1q.size(), 2u);
    EXPECT_EQ(dag.trailing1q().size(), 1u);
}

TEST(Dag, BarriersIgnored)
{
    Circuit qc(2);
    qc.add(Gate(GateKind::Barrier, -1));
    qc.cx(0, 1);
    const DependencyDag dag(qc);
    EXPECT_EQ(dag.size(), 1);
}

TEST(Dag, FrontierSortedByCircuitIndex)
{
    Circuit qc(6);
    qc.cx(4, 5);
    qc.cx(0, 1);
    qc.cx(2, 3);
    DependencyDag dag(qc);
    const auto &frontier = dag.frontier();
    ASSERT_EQ(frontier.size(), 3u);
    EXPECT_LT(dag.node(frontier[0]).circuitIndex,
              dag.node(frontier[1]).circuitIndex);
    EXPECT_LT(dag.node(frontier[1]).circuitIndex,
              dag.node(frontier[2]).circuitIndex);
}

TEST(Dag, FrontLayersRespectDependencies)
{
    Circuit qc(4);
    qc.cx(0, 1); // layer 0
    qc.cx(2, 3); // layer 0
    qc.cx(1, 2); // layer 1
    qc.cx(0, 1); // layer 2 (needs gate 0 and gate 2's completion? no:
                 // depends on gates 0 and 2 via qubits 0 and 1)
    const DependencyDag dag(qc);
    const auto layers = dag.frontLayers(8);
    ASSERT_GE(layers.size(), 2u);
    EXPECT_EQ(layers[0].size(), 2u);
    EXPECT_EQ(layers[1].size(), 1u);
}

TEST(Dag, FrontLayersNonDestructive)
{
    const Circuit qc = makeGhz(8);
    DependencyDag dag(qc);
    const int before = dag.remaining();
    (void)dag.frontLayers(4);
    EXPECT_EQ(dag.remaining(), before);
    EXPECT_EQ(dag.frontier().size(), 1u);
}

TEST(Dag, FrontLayersBoundedByK)
{
    const Circuit qc = makeGhz(32); // strictly serial chain
    const DependencyDag dag(qc);
    EXPECT_EQ(dag.frontLayers(5).size(), 5u);
    EXPECT_EQ(dag.frontLayers(0).size(), 0u);
}

TEST(Dag, GhzChainIsSerial)
{
    const Circuit qc = makeGhz(16);
    DependencyDag dag(qc);
    int retired = 0;
    while (!dag.empty()) {
        ASSERT_EQ(dag.frontier().size(), 1u);
        dag.complete(dag.frontier().front());
        ++retired;
    }
    EXPECT_EQ(retired, 15);
}

TEST(Dag, FullDrainOfWorkload)
{
    const Circuit qc = makeAdder(32);
    DependencyDag dag(qc);
    int retired = 0;
    while (!dag.empty()) {
        dag.complete(dag.frontier().front());
        ++retired;
    }
    EXPECT_EQ(retired, qc.twoQubitCount());
}

TEST(Dag, TopologicalInvariantUnderRandomDrain)
{
    // Property: completing always-first-ready nodes never exposes a node
    // before all its predecessors retire. Exercised over a random
    // circuit by draining from varying frontier positions.
    const Circuit qc = makeRandomCircuit(16, 200, 5);
    DependencyDag dag(qc);
    std::vector<bool> done(dag.size(), false);
    std::size_t pick = 0;
    while (!dag.empty()) {
        const auto &frontier = dag.frontier();
        const DagNodeId id = frontier[pick % frontier.size()];
        ++pick;
        // Every predecessor of id must already be done: verify through
        // the succ lists of done nodes.
        done[id] = true;
        dag.complete(id);
    }
    for (DagNodeId id = 0; id < dag.size(); ++id) {
        for (DagNodeId succ : dag.node(id).succs)
            EXPECT_TRUE(done[succ]);
    }
}

} // namespace
} // namespace mussti
