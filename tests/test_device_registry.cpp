/**
 * @file
 * Tests for the DeviceRegistry spec grammar: parse round-trips,
 * canonicalisation fixed points, malformed-spec diagnostics that name
 * the offending token (the qasm.cpp convention), digest stability for
 * cache keying, and end-to-end compilation of registry-built devices —
 * including the heterogeneous EML specs the registry unlocks.
 */
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "arch/device_registry.h"
#include "core/compiler.h"
#include "sim/validator.h"
#include "workloads/workloads.h"

namespace mussti {
namespace {

/** Expect parse() to throw and the diagnostic to name `token`. */
void
expectParseErrorNaming(const std::string &spec, const std::string &token)
{
    try {
        DeviceRegistry::parse(spec);
        FAIL() << "spec `" << spec << "` parsed but should have failed";
    } catch (const std::runtime_error &err) {
        EXPECT_NE(std::string(err.what()).find(token), std::string::npos)
            << "diagnostic for `" << spec
            << "` does not name the offending token `" << token
            << "`: " << err.what();
    }
}

TEST(DeviceRegistry, ParsesGridSpecs)
{
    const DeviceSpec spec = DeviceRegistry::parse("grid:8x8,cap=16");
    ASSERT_EQ(spec.family, DeviceFamily::Grid);
    EXPECT_EQ(spec.grid.width, 8);
    EXPECT_EQ(spec.grid.height, 8);
    EXPECT_EQ(spec.grid.trapCapacity, 16);
    EXPECT_EQ(spec.grid.pitchUm, 200.0);

    const DeviceSpec pitched =
        DeviceRegistry::parse("grid:4x3,cap=8,pitch=150.5");
    EXPECT_EQ(pitched.grid.pitchUm, 150.5);
}

TEST(DeviceRegistry, ParsesEmlSpecs)
{
    const DeviceSpec spec =
        DeviceRegistry::parse("eml:modules=4,cap=16,optical=2");
    ASSERT_EQ(spec.family, DeviceFamily::Eml);
    EXPECT_EQ(spec.eml.forcedNumModules, 4);
    EXPECT_EQ(spec.eml.trapCapacity, 16);
    EXPECT_EQ(spec.eml.numOpticalZones, 2);
    // Unmentioned knobs keep paper defaults.
    EXPECT_EQ(spec.eml.numStorageZones, 2);
    EXPECT_EQ(spec.eml.maxQubitsPerModule, 32);

    // `op` and `operation` are synonyms; keys are case-insensitive.
    EXPECT_EQ(DeviceRegistry::parse("eml:op=3").eml.numOperationZones, 3);
    EXPECT_EQ(DeviceRegistry::parse("eml:OPERATION=3")
                  .eml.numOperationZones, 3);
}

TEST(DeviceRegistry, ParsesHeterogeneousMixes)
{
    const DeviceSpec spec =
        DeviceRegistry::parse("eml:hetero=2.1.2-3.2.1,cap=20");
    ASSERT_EQ(spec.eml.moduleMix.size(), 2u);
    EXPECT_EQ(spec.eml.moduleMix[0].storage, 2);
    EXPECT_EQ(spec.eml.moduleMix[0].operation, 1);
    EXPECT_EQ(spec.eml.moduleMix[0].optical, 2);
    EXPECT_EQ(spec.eml.moduleMix[1].storage, 3);
    EXPECT_EQ(spec.eml.moduleMix[1].operation, 2);
    EXPECT_EQ(spec.eml.moduleMix[1].optical, 1);
    EXPECT_EQ(spec.eml.trapCapacity, 20);
}

TEST(DeviceRegistry, CanonicalFormIsAFixedPoint)
{
    const std::vector<std::string> specs = {
        "grid:8x8,cap=16",
        "grid:4x3,cap=8,pitch=150",
        "eml:cap=16,storage=2,op=1,optical=1,maxq=32",
        "eml:modules=4,cap=16,optical=2",
        "eml:hetero=2.1.2-3.2.1,cap=20",
        "eml:cap=12", // sparse input canonicalises to the full form
    };
    for (const std::string &text : specs) {
        const std::string canonical =
            DeviceRegistry::parse(text).canonical();
        EXPECT_EQ(DeviceRegistry::parse(canonical).canonical(),
                  canonical)
            << "canonical form of `" << text << "` is not stable";
    }
}

TEST(DeviceRegistry, CreatedDeviceSpecMatchesCanonical)
{
    for (const std::string &text :
         {std::string("grid:5x4,cap=16"),
          std::string("eml:hetero=2.1.1-2.1.2,cap=16")}) {
        const DeviceSpec spec = DeviceRegistry::parse(text);
        const auto device = DeviceRegistry::create(spec, 48);
        EXPECT_EQ(device->spec(), spec.canonical());
    }
}

TEST(DeviceRegistry, MalformedSpecsNameTheOffendingToken)
{
    expectParseErrorNaming("eml", "family");
    expectParseErrorNaming("ring:cap=16", "ring");
    expectParseErrorNaming("eml:caps=16", "caps");
    expectParseErrorNaming("eml:cap", "cap");
    expectParseErrorNaming("eml:cap=banana", "banana");
    expectParseErrorNaming("eml:hetero=2.1", "2.1");
    expectParseErrorNaming("eml:hetero=2.1.x", "x");
    expectParseErrorNaming("eml:hetero=2.1.1,storage=3", "hetero");
    expectParseErrorNaming("grid:cap=16", "cap=16");
    expectParseErrorNaming("grid:8y8", "8y8");
    expectParseErrorNaming("grid:8x8,depth=2", "depth");
}

TEST(DeviceRegistry, DuplicateKeysAreDiagnosed)
{
    // Before ISSUE 5 the last occurrence silently won, so
    // `eml:cap=16,cap=4` compiled with a surprising cap-4 device.
    expectParseErrorNaming("eml:cap=16,cap=4", "duplicate key `cap`");
    expectParseErrorNaming("eml:modules=2,modules=4",
                           "duplicate key `modules`");
    expectParseErrorNaming("grid:8x8,cap=16,cap=8",
                           "duplicate key `cap`");
    expectParseErrorNaming("grid:4x3,pitch=100,pitch=200",
                           "duplicate key `pitch`");
    // The op/operation synonyms are one key.
    expectParseErrorNaming("eml:op=1,operation=2", "duplicate key `op`");
}

TEST(DeviceRegistry, TryCreateAbsorbsOnlyTheUserErrorPath)
{
    // Feasible spec: a real device comes back.
    const DeviceSpec fits = DeviceRegistry::parse("eml:modules=3,cap=16");
    EXPECT_NE(DeviceRegistry::tryCreate(fits, 96), nullptr);

    // 2 modules x maxq=32 cannot hold 96 qubits: nullptr plus the
    // device's own diagnostic, no throw (the tuner's quiet probe).
    const DeviceSpec small = DeviceRegistry::parse("eml:modules=2,cap=16");
    std::string reason;
    EXPECT_EQ(DeviceRegistry::tryCreate(small, 96, &reason), nullptr);
    EXPECT_NE(reason.find("cannot hold"), std::string::npos) << reason;
}

TEST(DeviceRegistry, DigestIsStableAndDiscriminates)
{
    // Pinned digests: the cache key of every past CompileService run.
    // If these move, cached results silently stop matching across
    // versions — change them only with a changelog entry.
    EXPECT_EQ(DeviceRegistry::parse("grid:8x8,cap=16").digest(),
              0x1cd566c83d5431d8ull);
    EXPECT_EQ(DeviceRegistry::parse(
                  "eml:cap=16,storage=2,op=1,optical=1,maxq=32")
                  .digest(),
              0xa6d5cea7098ef762ull);

    // Same topology, different writing -> same digest.
    EXPECT_EQ(DeviceRegistry::parse("eml:cap=16").digest(),
              DeviceRegistry::parse(
                  "eml:optical=1,storage=2,cap=16,op=1,maxq=32")
                  .digest());
    // Different topology -> different digest.
    EXPECT_NE(DeviceRegistry::parse("eml:cap=16").digest(),
              DeviceRegistry::parse("eml:cap=18").digest());
    EXPECT_NE(DeviceRegistry::parse("eml:hetero=2.1.1-2.1.1").digest(),
              DeviceRegistry::parse("eml:hetero=2.1.1-2.1.2").digest());
    EXPECT_NE(DeviceRegistry::parse("grid:8x8").digest(),
              DeviceRegistry::parse("grid:8x9").digest());
}

TEST(DeviceRegistry, HeteroSpecHelperRendersCanonicalForm)
{
    const std::string spec =
        DeviceRegistry::heteroSpec({{2, 1, 1}, {2, 1, 2}}, 20);
    // The helper is the canonical producer: re-parsing is a fixed
    // point and the mix survives the round trip.
    EXPECT_EQ(DeviceRegistry::parse(spec).canonical(), spec);
    const DeviceSpec parsed = DeviceRegistry::parse(spec);
    ASSERT_EQ(parsed.eml.moduleMix.size(), 2u);
    EXPECT_EQ(parsed.eml.moduleMix[1].optical, 2);
    EXPECT_EQ(parsed.eml.trapCapacity, 20);
}

TEST(DeviceRegistry, DeviceSpecFoldsIntoBackendConfigDigest)
{
    MusstiConfig uniform;
    MusstiConfig hetero;
    hetero.device.moduleMix = {{2, 1, 1}, {2, 1, 2}};
    // Heterogeneous mixes must key the CompileService cache.
    EXPECT_NE(MusstiCompiler(uniform).configDigest(),
              MusstiCompiler(hetero).configDigest());
}

TEST(DeviceRegistry, HeterogeneousSpecCompilesEndToEnd)
{
    const DeviceSpec spec =
        DeviceRegistry::parse("eml:hetero=2.1.2-3.1.1,cap=16");
    MusstiConfig config;
    config.device = spec.eml;
    const Circuit qc = makeBenchmark("ghz", 48);
    const auto result = MusstiCompiler(config).compile(qc);
    const auto device = DeviceRegistry::create(spec, qc.numQubits());
    const auto report =
        ScheduleValidator(*device).validate(result.schedule,
                                            result.lowered);
    EXPECT_TRUE(report) << report.firstError;
    EXPECT_GT(result.metrics.gate2qCount + result.metrics.fiberGateCount,
              0);
}

} // namespace
} // namespace mussti
