/**
 * @file
 * Tests for the schedule trace/summary utilities.
 */
#include <gtest/gtest.h>

#include "core/compiler.h"
#include "sim/trace.h"
#include "workloads/workloads.h"

namespace mussti {
namespace {

CompileResult
compiled(const Circuit &qc)
{
    return MusstiCompiler().compile(qc);
}

TEST(Trace, FormatsEveryOpKindAnnotation)
{
    const Circuit qc = makeQft(48); // shuttles + fiber + ion swaps
    const auto result = compiled(qc);
    const MusstiCompiler compiler;
    const std::shared_ptr<const EmlDevice> device = compiler.deviceFor(qc);
    const std::string text = formatSchedule(result.schedule,
                                            device->zoneInfos(), -1);
    EXPECT_NE(text.find("gate2q"), std::string::npos);
    EXPECT_NE(text.find("split"), std::string::npos);
    EXPECT_NE(text.find("merge"), std::string::npos);
    EXPECT_NE(text.find("fiber-gate"), std::string::npos);
    EXPECT_NE(text.find("[operation"), std::string::npos);
    EXPECT_NE(text.find("[optical"), std::string::npos);
}

TEST(Trace, TruncationMarksRemainder)
{
    const Circuit qc = makeQft(32);
    const auto result = compiled(qc);
    const MusstiCompiler compiler;
    const std::shared_ptr<const EmlDevice> device = compiler.deviceFor(qc);
    const std::string text = formatSchedule(result.schedule,
                                            device->zoneInfos(), 5);
    EXPECT_NE(text.find("more ops"), std::string::npos);
    // 5 op lines + truncation line.
    EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 6);
}

TEST(Trace, HistogramCountsMatchStream)
{
    const Circuit qc = makeGhz(64);
    const auto result = compiled(qc);
    const auto histogram = opHistogram(result.schedule);
    int total = 0;
    for (const auto &[kind, count] : histogram)
        total += count;
    EXPECT_EQ(total, static_cast<int>(result.schedule.ops.size()));
    EXPECT_EQ(histogram.at("merge"), result.metrics.shuttleCount);
}

TEST(Trace, SummaryMentionsKeyCounters)
{
    const Circuit qc = makeSqrt(63);
    const auto result = compiled(qc);
    const std::string summary = summarizeSchedule(result.schedule);
    EXPECT_NE(summary.find("shuttles"), std::string::npos);
    EXPECT_NE(summary.find("us serial"), std::string::npos);
    EXPECT_NE(summary.find(std::to_string(result.metrics.shuttleCount)),
              std::string::npos);
}

TEST(Trace, InsertedSwapsAreMarked)
{
    // Force an insertion with the Fig 5 pattern.
    MusstiConfig config;
    config.device.maxQubitsPerModule = 8;
    config.mapping = MappingKind::Trivial;
    Circuit qc(16, "fig5");
    qc.cx(0, 8);
    for (int i = 1; i <= 6; ++i)
        qc.cx(0, 8 + i);
    const auto result = MusstiCompiler(config).compile(qc);
    ASSERT_GE(result.swapInsertions, 1);
    const EmlDevice device(config.device, 16);
    const std::string text = formatSchedule(result.schedule, device, -1);
    EXPECT_NE(text.find("[inserted-swap]"), std::string::npos);
}

} // namespace
} // namespace mussti
