/**
 * @file
 * Tests for the OpenQASM 2.0 subset reader/writer, including round-trip
 * preservation of the scheduling-relevant structure.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/qasm.h"
#include "common/error.h"
#include "workloads/workloads.h"

namespace mussti {
namespace {

TEST(Qasm, EmitsHeaderAndRegisters)
{
    Circuit qc(3, "demo");
    qc.h(0);
    const std::string text = toQasm(qc);
    EXPECT_NE(text.find("OPENQASM 2.0;"), std::string::npos);
    EXPECT_NE(text.find("qreg q[3];"), std::string::npos);
    EXPECT_NE(text.find("h q[0];"), std::string::npos);
}

TEST(Qasm, ParsesBasicProgram)
{
    const std::string text = R"(
        OPENQASM 2.0;
        include "qelib1.inc";
        qreg q[3];
        creg c[3];
        h q[0];
        cx q[0],q[1];
        rz(0.5) q[2];
        measure q[0] -> c[0];
    )";
    const Circuit qc = fromQasm(text, "parsed");
    EXPECT_EQ(qc.numQubits(), 3);
    ASSERT_EQ(qc.size(), 4u);
    EXPECT_EQ(qc[1].kind, GateKind::Cx);
    EXPECT_EQ(qc[1].q1, 1);
    EXPECT_NEAR(qc[2].param, 0.5, 1e-12);
    EXPECT_EQ(qc[3].kind, GateKind::Measure);
}

TEST(Qasm, ParsesPiFractions)
{
    const Circuit qc = fromQasm(
        "qreg q[1]; rz(pi/2) q[0]; rz(-pi/4) q[0];");
    EXPECT_NEAR(qc[0].param, 1.5707963, 1e-6);
    EXPECT_NEAR(qc[1].param, -0.7853981, 1e-6);
}

TEST(Qasm, ParsesCommentsAndWhitespace)
{
    const Circuit qc = fromQasm(
        "// header comment\nqreg q[2];\n// mid comment\ncx q[0],q[1];");
    EXPECT_EQ(qc.twoQubitCount(), 1);
}

TEST(Qasm, RejectsGateDefinitions)
{
    EXPECT_THROW(fromQasm("qreg q[2]; gate foo a { h a; }"),
                 std::runtime_error);
}

TEST(Qasm, RejectsMissingQreg)
{
    EXPECT_THROW(fromQasm("h q[0];"), std::runtime_error);
}

TEST(Qasm, RejectsWrongRegisterName)
{
    EXPECT_THROW(fromQasm("qreg q[2]; cx r[0],r[1];"),
                 std::runtime_error);
}

TEST(Qasm, RoundTripPreservesStructure)
{
    const Circuit original = makeAdder(16);
    const Circuit reparsed = fromQasm(toQasm(original), original.name());
    EXPECT_EQ(reparsed.numQubits(), original.numQubits());
    EXPECT_EQ(reparsed.twoQubitCount(), original.twoQubitCount());
    ASSERT_EQ(reparsed.size(), original.size());
    for (std::size_t i = 0; i < original.size(); ++i) {
        if (!original[i].twoQubit())
            continue;
        EXPECT_EQ(reparsed[i].q0, original[i].q0) << "gate " << i;
        EXPECT_EQ(reparsed[i].q1, original[i].q1) << "gate " << i;
    }
}

TEST(Qasm, RoundTripAllFamilies)
{
    for (const auto &family : benchmarkFamilies()) {
        const Circuit original = makeBenchmark(family, 16);
        const Circuit reparsed = fromQasm(toQasm(original));
        EXPECT_EQ(reparsed.twoQubitCount(), original.twoQubitCount())
            << family;
    }
}

TEST(Qasm, ParsesPiProducts)
{
    // "a*pi", "pi*a", and "a*pi/b" forms (the old parser read every one
    // of these as plain pi).
    const Circuit qc = fromQasm(
        "qreg q[1]; rz(2*pi) q[0]; rz(pi*3) q[0]; rz(-3*pi/2) q[0]; "
        "rz(0.5*pi/2) q[0];");
    EXPECT_NEAR(qc[0].param, 2.0 * M_PI, 1e-12);
    EXPECT_NEAR(qc[1].param, 3.0 * M_PI, 1e-12);
    EXPECT_NEAR(qc[2].param, -1.5 * M_PI, 1e-12);
    EXPECT_NEAR(qc[3].param, 0.25 * M_PI, 1e-12);
}

TEST(Qasm, RejectsZeroDenominatorPi)
{
    // pi/0 used to silently parse to inf.
    EXPECT_THROW(fromQasm("qreg q[1]; rz(pi/0) q[0];"),
                 std::runtime_error);
    EXPECT_THROW(fromQasm("qreg q[1]; rz(pi/0.0) q[0];"),
                 std::runtime_error);
}

TEST(Qasm, RejectsMalformedOperands)
{
    // Unchecked find('[')/find(']') results used to reach substr/stoi.
    EXPECT_THROW(fromQasm("qreg q[2]; h q0;"), std::runtime_error);
    EXPECT_THROW(fromQasm("qreg q[2]; h q[;"), std::runtime_error);
    EXPECT_THROW(fromQasm("qreg q[2]; h q[];"), std::runtime_error);
    EXPECT_THROW(fromQasm("qreg q[2]; h q[x];"), std::runtime_error);
    EXPECT_THROW(fromQasm("qreg q[2]; h q[1extra];"), std::runtime_error);
    EXPECT_THROW(fromQasm("qreg q[2]; cx q[0] q[1];"),
                 std::runtime_error); // missing comma
}

TEST(Qasm, RejectsMalformedQreg)
{
    EXPECT_THROW(fromQasm("qreg q[; h q[0];"), std::runtime_error);
    EXPECT_THROW(fromQasm("qreg q[]; h q[0];"), std::runtime_error);
    EXPECT_THROW(fromQasm("qreg q[zzz]; h q[0];"), std::runtime_error);
    EXPECT_THROW(fromQasm("qreg q[0]; h q[0];"), std::runtime_error);
    EXPECT_THROW(fromQasm("qreg [4]; h q[0];"), std::runtime_error);
}

TEST(Qasm, RejectsMalformedParams)
{
    EXPECT_THROW(fromQasm("qreg q[1]; rz(abc) q[0];"),
                 std::runtime_error);
    EXPECT_THROW(fromQasm("qreg q[1]; rz(0.5 q[0];"),
                 std::runtime_error); // unterminated list
    EXPECT_THROW(fromQasm("qreg q[1]; rz(1.5x) q[0];"),
                 std::runtime_error); // trailing garbage
    EXPECT_THROW(fromQasm("qreg q[1]; rz(pi/2/2) q[0];"),
                 std::runtime_error); // chained division
    EXPECT_THROW(fromQasm("qreg q[1]; rz(2*3) q[0];"),
                 std::runtime_error); // product without pi
    EXPECT_THROW(fromQasm("qreg q[1]; rz(-) q[0];"),
                 std::runtime_error); // dangling sign
}

TEST(Qasm, RejectsOutOfRangeOperand)
{
    EXPECT_THROW(fromQasm("qreg q[2]; cx q[0],q[5];"),
                 std::runtime_error);
}

TEST(Qasm, DiagnosticsNameTheStatement)
{
    try {
        fromQasm("qreg q[1]; rz(pi/0) q[0];");
        FAIL() << "expected a parse failure";
    } catch (const std::runtime_error &err) {
        EXPECT_NE(std::string(err.what()).find("rz(pi/0)"),
                  std::string::npos)
            << "diagnostic should quote the statement: " << err.what();
    }
}

TEST(Qasm, RejectsRepeatedTwoQubitOperand)
{
    // Fuzzer-found regression: "cx q[0],q[0]" used to sail past the
    // range validation and trip Circuit::add's internal assertion — an
    // Internal panic (std::logic_error) for what is a malformed
    // program. It must be a structured InvalidInput rejection.
    try {
        fromQasm("qreg q[2]; cx q[0],q[0];");
        FAIL() << "expected a parse failure";
    } catch (const MusstiError &err) {
        EXPECT_EQ(err.category(), ErrorCategory::InvalidInput);
        EXPECT_NE(err.message().find("repeats operand"),
                  std::string::npos)
            << err.message();
    }
    // Same through rxx (the Ms spelling) and for a mid-program gate.
    EXPECT_THROW(fromQasm("qreg q[4]; h q[1]; rxx(pi/2) q[3],q[3];"),
                 std::runtime_error);
}

TEST(Qasm, ParseFailuresCarryInvalidInputCategory)
{
    // Every rejection of a malformed program is taxonomy-classified as
    // the caller's fault, never as an internal bug.
    const char *bad_programs[] = {
        "h q[0];",                       // gate before qreg
        "qreg q[2]; cx q[0] q[1];",      // missing comma
        "qreg q[2]; cx q[0],q[5];",      // out of range
        "qreg q[1]; rz(pi/0) q[0];",     // zero denominator
        "qreg q[2]; gate foo a { }",     // unsupported construct
    };
    for (const char *program : bad_programs) {
        try {
            fromQasm(program);
            FAIL() << "accepted: " << program;
        } catch (const MusstiError &err) {
            EXPECT_EQ(err.category(), ErrorCategory::InvalidInput)
                << program;
            EXPECT_EQ(err.code(), "input.require") << program;
        } catch (const std::exception &err) {
            FAIL() << "unstructured exception for: " << program
                   << " — " << err.what();
        }
    }
}

TEST(Qasm, MsGateSerializesAsRxx)
{
    Circuit qc(2);
    qc.ms(0, 1);
    const std::string text = toQasm(qc);
    EXPECT_NE(text.find("rxx"), std::string::npos);
    const Circuit reparsed = fromQasm(text);
    EXPECT_EQ(reparsed[0].kind, GateKind::Ms);
}

} // namespace
} // namespace mussti
