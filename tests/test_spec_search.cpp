/**
 * @file
 * Tests for the spec search grammar (arch/spec_search.h): range
 * expansion, deterministic enumeration order, heterogeneous
 * alternatives, and the malformed-range diagnostics the tuner relies
 * on (the device-registry token-naming convention).
 */
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "arch/spec_search.h"

namespace mussti {
namespace {

/** Expect parseSpecSearch to throw, naming `token` in the message. */
void
expectSearchErrorNaming(const std::string &text, const std::string &token)
{
    try {
        (void)parseSpecSearch(text);
        FAIL() << "search `" << text << "` parsed but should have failed";
    } catch (const std::runtime_error &err) {
        EXPECT_NE(std::string(err.what()).find(token), std::string::npos)
            << "diagnostic for `" << text
            << "` does not name the offending token `" << token
            << "`: " << err.what();
    }
}

TEST(SpecSearch, ExpandsRangesWithDefaultAndExplicitStep)
{
    const SpecSearchSpace space =
        parseSpecSearch("eml:modules=2..8,cap=8..32:step=8");
    EXPECT_EQ(space.family, "eml");
    ASSERT_EQ(space.axes.size(), 2u);
    EXPECT_EQ(space.axes[0].key, "modules");
    EXPECT_EQ(space.axes[0].values.size(), 7u); // 2,3,...,8
    EXPECT_EQ(space.axes[1].key, "cap");
    ASSERT_EQ(space.axes[1].values.size(), 4u); // 8,16,24,32
    EXPECT_EQ(space.axes[1].values.back(), "32");
    EXPECT_EQ(space.size(), 28u);
    EXPECT_EQ(space.enumerate().size(), 28u);
}

TEST(SpecSearch, FixedKeysAreSingleValueAxes)
{
    const SpecSearchSpace space = parseSpecSearch("eml:cap=16,optical=2");
    EXPECT_EQ(space.size(), 1u);
    const auto specs = space.enumerate();
    ASSERT_EQ(specs.size(), 1u);
    EXPECT_EQ(specs[0].canonical(),
              DeviceRegistry::parse("eml:cap=16,optical=2").canonical());
}

TEST(SpecSearch, EnumerationOrderIsOdometerLastAxisFastest)
{
    const auto specs =
        parseSpecSearch("eml:modules=2..3,cap=10..12:step=2").enumerate();
    ASSERT_EQ(specs.size(), 4u);
    EXPECT_EQ(specs[0].eml.forcedNumModules, 2);
    EXPECT_EQ(specs[0].eml.trapCapacity, 10);
    EXPECT_EQ(specs[1].eml.forcedNumModules, 2);
    EXPECT_EQ(specs[1].eml.trapCapacity, 12);
    EXPECT_EQ(specs[2].eml.forcedNumModules, 3);
    EXPECT_EQ(specs[2].eml.trapCapacity, 10);
    EXPECT_EQ(specs[3].eml.forcedNumModules, 3);
    EXPECT_EQ(specs[3].eml.trapCapacity, 12);
}

TEST(SpecSearch, HeteroAlternativesCrossWithRanges)
{
    const auto specs = parseSpecSearch(
        "eml:hetero=2.1.1-2.1.1|2.1.2-2.1.1,cap=12..16:step=4")
        .enumerate();
    ASSERT_EQ(specs.size(), 4u);
    // Alternative 1 (uniform), cap 12 then 16; alternative 2, ditto.
    ASSERT_EQ(specs[0].eml.moduleMix.size(), 2u);
    EXPECT_EQ(specs[0].eml.moduleMix[0].optical, 1);
    EXPECT_EQ(specs[0].eml.trapCapacity, 12);
    EXPECT_EQ(specs[1].eml.trapCapacity, 16);
    EXPECT_EQ(specs[2].eml.moduleMix[0].optical, 2);
    EXPECT_EQ(specs[2].eml.trapCapacity, 12);
    EXPECT_EQ(specs[3].eml.moduleMix[0].optical, 2);
    EXPECT_EQ(specs[3].eml.trapCapacity, 16);
}

TEST(SpecSearch, GridSearchesSweepCapOverAFixedGeometry)
{
    const auto specs =
        parseSpecSearch("grid:4x3,cap=4..8:step=2").enumerate();
    ASSERT_EQ(specs.size(), 3u);
    for (const DeviceSpec &spec : specs) {
        EXPECT_EQ(spec.family, DeviceFamily::Grid);
        EXPECT_EQ(spec.grid.width, 4);
        EXPECT_EQ(spec.grid.height, 3);
    }
    EXPECT_EQ(specs[0].grid.trapCapacity, 4);
    EXPECT_EQ(specs[2].grid.trapCapacity, 8);
}

TEST(SpecSearch, EveryCandidateRoundTripsThroughTheRegistry)
{
    for (const DeviceSpec &spec :
         parseSpecSearch("eml:modules=2..4,cap=12..16:step=2")
             .enumerate()) {
        EXPECT_EQ(DeviceRegistry::parse(spec.canonical()).canonical(),
                  spec.canonical());
    }
}

TEST(SpecSearch, MalformedRangesNameTheOffendingToken)
{
    expectSearchErrorNaming("eml:cap=8..", "8..");
    expectSearchErrorNaming("eml:cap=..8", "..8");
    expectSearchErrorNaming("eml:cap=16..8", "16..8");
    expectSearchErrorNaming("eml:cap=a..b", "a");
    expectSearchErrorNaming("eml:cap=8..32:step=0", "step");
    expectSearchErrorNaming("eml:cap=8..32:step=x", "x");
    expectSearchErrorNaming("eml:cap=8..32:stride=4", "stride");
    expectSearchErrorNaming("eml:cap=8..32:step=4:step=2", "8..32");
    expectSearchErrorNaming("eml:cap=8..16,cap=20", "duplicate");
    expectSearchErrorNaming("eml:op=1..2,operation=3", "duplicate");
    expectSearchErrorNaming("eml:hetero=2.1.1|", "hetero");
    expectSearchErrorNaming("grid:cap=4..8", "geometry");
    expectSearchErrorNaming("ring:cap=4..8", "ring");
    expectSearchErrorNaming("eml", "family");
}

TEST(SpecSearch, RejectsRunawayCandidateCounts)
{
    expectSearchErrorNaming("eml:cap=1..100000", "ceiling");
}

TEST(SpecSearch, RegistryValidationHappensAtParseTime)
{
    // hetero excludes the uniform zone keys — the registry's rule, and
    // the search parse surfaces it eagerly rather than mid-sweep.
    expectSearchErrorNaming("eml:hetero=2.1.1-2.1.1,storage=1..2",
                            "hetero");
}

} // namespace
} // namespace mussti
