/**
 * @file
 * Tests for the multi-level router: plan selection, LRU conflict
 * eviction, multi-level demotion, and optical-zone routing.
 */
#include <memory>

#include <gtest/gtest.h>

#include "arch/eml_device.h"
#include "core/lru.h"
#include "core/router.h"

namespace mussti {
namespace {

TEST(Lru, VictimIsOldest)
{
    LruTracker lru(4);
    lru.touch(0);
    lru.touch(1);
    lru.touch(2);
    const ZoneChain zone{0, 1, 2};
    EXPECT_EQ(lru.victim(zone, {}), 0);
    lru.touch(0);
    EXPECT_EQ(lru.victim(zone, {}), 1);
}

TEST(Lru, NeverUsedBeatsUsed)
{
    LruTracker lru(4);
    lru.touch(0);
    const ZoneChain zone{0, 3};
    EXPECT_EQ(lru.victim(zone, {}), 3);
}

TEST(Lru, ExclusionRespected)
{
    LruTracker lru(3);
    const ZoneChain zone{0, 1};
    EXPECT_EQ(lru.victim(zone, {0}), 1);
    EXPECT_EQ(lru.victim(zone, {0, 1}), -1);
}

TEST(Lru, AllCandidatesExcludedReturnsSentinel)
{
    // Regression for the documented -1 contract: every caller must
    // guard it (grid spill dead-lock test exercises the caller side).
    LruTracker lru(4);
    lru.touch(0);
    lru.touch(1);
    const ZoneChain zone{0, 1, 2};
    EXPECT_EQ(lru.victim(zone, {0, 1, 2}), -1);
    EXPECT_EQ(lru.victim(zone, {2, 1, 0}), -1); // order irrelevant
    EXPECT_EQ(lru.victim({}, {}), -1);          // empty chain
    // Excess exclusions beyond the chain are harmless.
    EXPECT_EQ(lru.victim(zone, {0, 1, 2, 3}), -1);
}

/** Small 1-module fixture: capacity 4 per zone, 12 qubits. */
class RouterTest : public ::testing::Test
{
  protected:
    RouterTest()
    {
        config_.trapCapacity = 4;
        config_.maxQubitsPerModule = 12;
        device_ = std::make_unique<EmlDevice>(config_, 12);
        placement_ = std::make_unique<Placement>(12, device_->numZones());
        lru_ = std::make_unique<LruTracker>(12);
        // zones: [storage, operation, optical, storage]
        const auto zones = device_->zonesOfModule(0);
        for (int q = 0; q < 12; ++q)
            placement_->insert(q, zones[q / 4], ChainEnd::Back);
        schedule_.initialChains = Schedule::snapshotChains(*placement_);
        router_ = std::make_unique<Router>(*device_, params_, *placement_,
                                           schedule_, *lru_);
    }

    int zoneIdx(int i) const { return device_->zonesOfModule(0)[i]; }

    EmlConfig config_;
    PhysicalParams params_;
    std::unique_ptr<EmlDevice> device_;
    std::unique_ptr<Placement> placement_;
    std::unique_ptr<LruTracker> lru_;
    Schedule schedule_;
    std::unique_ptr<Router> router_;
};

TEST_F(RouterTest, MovesSingleQubitToPartnersGateZone)
{
    // q0 in storage, q4 in operation. The operation zone is full
    // (q4..q7), so the plan is one LRU eviction plus the move of q0:
    // exactly two shuttles.
    router_->routeForGate(0, 4);
    EXPECT_EQ(placement_->zoneOf(0), placement_->zoneOf(4));
    EXPECT_TRUE(device_->zone(placement_->zoneOf(0)).gateCapable());
    EXPECT_EQ(schedule_.shuttleCount, 2);
    EXPECT_EQ(router_->evictionCount(), 1);
}

TEST_F(RouterTest, BothInStorageMoveToGateZone)
{
    // q0, q1 both in storage zone 0: both move into a (full) gate zone,
    // displacing two residents: 4 shuttles total.
    router_->routeForGate(0, 1);
    const int zone = placement_->zoneOf(0);
    EXPECT_EQ(zone, placement_->zoneOf(1));
    EXPECT_TRUE(device_->zone(zone).gateCapable());
    EXPECT_EQ(schedule_.shuttleCount, 4);
    EXPECT_EQ(router_->evictionCount(), 2);
}

TEST_F(RouterTest, AlreadyColocatedGateZoneNoOp)
{
    // q4, q5 both already in the operation zone.
    router_->routeForGate(4, 5);
    EXPECT_EQ(schedule_.shuttleCount, 0);
}

TEST_F(RouterTest, ConflictEvictsLruToLowerLevel)
{
    // Fill the operation zone's LRU state: q4..q7 resident; touch all
    // but q5 so q5 is the victim.
    lru_->touch(4);
    lru_->touch(6);
    lru_->touch(7);
    // Optical zone q8..q11 is full too; route (0, 8): q0 must enter the
    // optical zone (partner there), forcing an eviction.
    lru_->touch(9);
    lru_->touch(10);
    lru_->touch(11);
    router_->routeForGate(0, 8);
    EXPECT_EQ(placement_->zoneOf(0), placement_->zoneOf(8));
    EXPECT_GE(router_->evictionCount(), 1);
    // q5 (the LRU victim of whichever gate zone got pressure) must have
    // been demoted out of it; every zone stays within capacity.
    for (int z = 0; z < device_->numZones(); ++z)
        EXPECT_LE(placement_->sizeOf(z), device_->zone(z).capacity);
}

TEST_F(RouterTest, EvictionTargetsLowerLevelFirst)
{
    // Make room in the operation zone so demotion from optical can land
    // there: move q4 out first (manually).
    lru_->touch(8); // protect-ish: make q8 newest
    // Route a storage qubit into the full optical zone: victim must be
    // demoted to operation (level 1) if it has space. Operation is full
    // (q4..q7), so first make space by routing one op-zone ion away is
    // implicit via cascade -- here we verify the fallback works at all
    // and placement stays legal.
    router_->routeForGate(0, 8);
    int total = 0;
    for (int z = 0; z < device_->numZones(); ++z) {
        EXPECT_LE(placement_->sizeOf(z), device_->zone(z).capacity);
        total += placement_->sizeOf(z);
    }
    EXPECT_EQ(total, 12);
}

TEST_F(RouterTest, RouteToOpticalIdempotent)
{
    router_->routeToOptical(8, {});
    EXPECT_EQ(schedule_.shuttleCount, 0);
    router_->routeToOptical(0, {});
    EXPECT_EQ(device_->zone(placement_->zoneOf(0)).kind,
              ZoneKind::Optical);
    EXPECT_GE(schedule_.shuttleCount, 1);
}

TEST_F(RouterTest, ProtectedQubitsSurviveEvictions)
{
    // Fill optical, then force q0+q8 gate: neither operand may be
    // evicted even under pressure.
    router_->routeForGate(0, 8);
    EXPECT_EQ(placement_->zoneOf(0), placement_->zoneOf(8));
}

TEST(RouterCross, CrossModuleRoutesBothToOptical)
{
    EmlConfig config;
    config.trapCapacity = 4;
    config.maxQubitsPerModule = 8;
    const EmlDevice device(config, 16); // 2 modules
    Placement placement(16, device.numZones());
    for (int q = 0; q < 16; ++q) {
        const int module = q / 8;
        // Module-local zones 0 (storage) and 1 (operation) only, so
        // both operands must shuttle into their optical zones.
        placement.insert(q, device.zonesOfModule(module)[(q % 8) / 4],
                         ChainEnd::Back);
    }
    Schedule schedule;
    schedule.initialChains = Schedule::snapshotChains(placement);
    LruTracker lru(16);
    PhysicalParams params;
    Router router(device, params, placement, schedule, lru);

    router.routeForGate(0, 8); // storage module 0 x storage module 1
    const int zone_a = placement.zoneOf(0);
    const int zone_b = placement.zoneOf(8);
    EXPECT_EQ(device.zone(zone_a).kind, ZoneKind::Optical);
    EXPECT_EQ(device.zone(zone_b).kind, ZoneKind::Optical);
    EXPECT_NE(device.zone(zone_a).module, device.zone(zone_b).module);
    EXPECT_EQ(schedule.shuttleCount, 2);
}

} // namespace
} // namespace mussti
