/**
 * @file
 * Tests for the parallel timeline model and the schedule analyzer.
 */
#include <gtest/gtest.h>

#include "core/compiler.h"
#include "sim/analyzer.h"
#include "sim/timeline.h"
#include "workloads/workloads.h"

namespace mussti {
namespace {

CompileResult
compileCircuit(const Circuit &qc)
{
    MusstiConfig config;
    return MusstiCompiler(config).compile(qc);
}

TEST(Timeline, MakespanNeverExceedsSerial)
{
    for (const char *family : {"ghz", "qft", "adder", "qaoa"}) {
        const Circuit qc = makeBenchmark(family, 32);
        const auto result = compileCircuit(qc);
        const MusstiCompiler compiler;
        const std::shared_ptr<const EmlDevice> device = compiler.deviceFor(qc);
        const Timeline timeline(device->zoneInfos());
        const auto t = timeline.replay(result.schedule, qc.numQubits());
        EXPECT_LE(t.makespanUs, t.serialUs + 1e-9) << family;
        EXPECT_GE(t.parallelism(), 1.0) << family;
    }
}

TEST(Timeline, SerialMatchesScheduleSum)
{
    const Circuit qc = makeGhz(32);
    const auto result = compileCircuit(qc);
    const MusstiCompiler compiler;
    const std::shared_ptr<const EmlDevice> device = compiler.deviceFor(qc);
    const auto t = Timeline(device->zoneInfos())
                       .replay(result.schedule, qc.numQubits());
    EXPECT_NEAR(t.serialUs, result.schedule.serialDurationUs(), 1e-9);
}

TEST(Timeline, ParallelWorkloadsOverlap)
{
    // Two independent gates in different modules must overlap: the
    // makespan is strictly below serial time.
    Circuit qc(64, "par");
    qc.cx(0, 1);   // module 0
    qc.cx(32, 33); // module 1
    const auto result = compileCircuit(qc);
    const MusstiCompiler compiler;
    const std::shared_ptr<const EmlDevice> device = compiler.deviceFor(qc);
    const auto t = Timeline(device->zoneInfos())
                       .replay(result.schedule, qc.numQubits());
    EXPECT_LT(t.makespanUs, t.serialUs);
}

TEST(Timeline, SequentialChainHasNoOverlap)
{
    // GHZ on one zone is fully serial on that zone's resource.
    Circuit qc(32, "serial");
    qc.cx(0, 1);
    qc.cx(1, 2);
    qc.cx(2, 3);
    const auto result = compileCircuit(qc);
    const MusstiCompiler compiler;
    const std::shared_ptr<const EmlDevice> device = compiler.deviceFor(qc);
    const auto t = Timeline(device->zoneInfos())
                       .replay(result.schedule, qc.numQubits());
    EXPECT_NEAR(t.makespanUs, t.serialUs, 1e-9);
}

TEST(Analyzer, GateAndShuttleCountsMatchMetrics)
{
    const Circuit qc = makeSqrt(47);
    const auto result = compileCircuit(qc);
    const MusstiCompiler compiler;
    const std::shared_ptr<const EmlDevice> device = compiler.deviceFor(qc);
    const PhysicalParams params;
    const auto report = analyzeSchedule(result.schedule,
                                        device->zoneInfos(), params);
    EXPECT_EQ(report.totalShuttles, result.metrics.shuttleCount);
    EXPECT_EQ(report.localGates, result.metrics.gate2qCount);
    EXPECT_EQ(report.fiberGates, result.metrics.fiberGateCount);
    EXPECT_NEAR(report.serialTimeUs, result.metrics.executionTimeUs,
                1e-9);
}

TEST(Analyzer, ArrivalsBalanceDepartures)
{
    const Circuit qc = makeQft(32);
    const auto result = compileCircuit(qc);
    const MusstiCompiler compiler;
    const std::shared_ptr<const EmlDevice> device = compiler.deviceFor(qc);
    const PhysicalParams params;
    const auto report = analyzeSchedule(result.schedule,
                                        device->zoneInfos(), params);
    int arrivals = 0, departures = 0;
    for (const auto &zone : report.zones) {
        arrivals += zone.arrivals;
        departures += zone.departures;
    }
    EXPECT_EQ(arrivals, departures); // every split has its merge
}

TEST(Analyzer, StorageZonesExecuteNoTwoQubitGates)
{
    const Circuit qc = makeSqrt(63);
    const auto result = compileCircuit(qc);
    const MusstiCompiler compiler;
    const std::shared_ptr<const EmlDevice> device = compiler.deviceFor(qc);
    const PhysicalParams params;
    const auto report = analyzeSchedule(result.schedule,
                                        device->zoneInfos(), params);
    // Storage zones may only host the costed-in-place 1q gates, never
    // the entangling traffic; gate-zone heat must dominate.
    double storage_heat = 0.0, gate_zone_heat = 0.0;
    for (const auto &zone : report.zones) {
        if (zone.kind == ZoneKind::Storage)
            storage_heat += zone.finalHeat;
        else
            gate_zone_heat += zone.finalHeat;
    }
    EXPECT_GT(gate_zone_heat, storage_heat * 0.5);
}

TEST(Analyzer, PeakOccupancyWithinCapacity)
{
    const Circuit qc = makeRandomCircuit(64, 300, 7);
    const auto result = compileCircuit(qc);
    const MusstiCompiler compiler;
    const std::shared_ptr<const EmlDevice> device = compiler.deviceFor(qc);
    const PhysicalParams params;
    const auto report = analyzeSchedule(result.schedule,
                                        device->zoneInfos(), params);
    for (std::size_t z = 0; z < report.zones.size(); ++z) {
        EXPECT_LE(report.zones[z].peakOccupancy,
                  device->zone(static_cast<int>(z)).capacity);
    }
}

TEST(Analyzer, HottestZonesSorted)
{
    const Circuit qc = makeQft(32);
    const auto result = compileCircuit(qc);
    const MusstiCompiler compiler;
    const std::shared_ptr<const EmlDevice> device = compiler.deviceFor(qc);
    const PhysicalParams params;
    const auto report = analyzeSchedule(result.schedule,
                                        device->zoneInfos(), params);
    const auto order = report.hottestZones();
    for (std::size_t i = 0; i + 1 < order.size(); ++i) {
        EXPECT_GE(report.zones[order[i]].finalHeat,
                  report.zones[order[i + 1]].finalHeat);
    }
}

TEST(Analyzer, PerfectShuttleAccumulatesNoHeat)
{
    const Circuit qc = makeQft(32);
    const auto result = compileCircuit(qc);
    const MusstiCompiler compiler;
    const std::shared_ptr<const EmlDevice> device = compiler.deviceFor(qc);
    PhysicalParams params;
    params.perfectShuttle = true;
    const auto report = analyzeSchedule(result.schedule,
                                        device->zoneInfos(), params);
    for (const auto &zone : report.zones)
        EXPECT_DOUBLE_EQ(zone.finalHeat, 0.0);
}

} // namespace
} // namespace mussti
