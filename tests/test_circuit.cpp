/**
 * @file
 * Unit tests for the circuit IR: gate metadata, builders, reversal,
 * SWAP lowering, and statistics.
 */
#include <gtest/gtest.h>

#include "circuit/circuit.h"
#include "circuit/gate.h"

namespace mussti {
namespace {

TEST(Gate, ArityTable)
{
    EXPECT_EQ(gateArity(GateKind::H), 1);
    EXPECT_EQ(gateArity(GateKind::Rz), 1);
    EXPECT_EQ(gateArity(GateKind::Cx), 2);
    EXPECT_EQ(gateArity(GateKind::Ms), 2);
    EXPECT_EQ(gateArity(GateKind::Swap), 2);
    EXPECT_EQ(gateArity(GateKind::Barrier), 0);
    EXPECT_EQ(gateArity(GateKind::Measure), 1);
}

TEST(Gate, TwoQubitClassification)
{
    EXPECT_TRUE(isTwoQubit(GateKind::Cx));
    EXPECT_TRUE(isTwoQubit(GateKind::Cz));
    EXPECT_FALSE(isTwoQubit(GateKind::H));
    EXPECT_FALSE(isTwoQubit(GateKind::Measure));
}

TEST(Gate, SingleQubitClassificationExcludesMeasure)
{
    EXPECT_TRUE(isSingleQubit(GateKind::H));
    EXPECT_TRUE(isSingleQubit(GateKind::Rz));
    EXPECT_FALSE(isSingleQubit(GateKind::Measure));
    EXPECT_FALSE(isSingleQubit(GateKind::Cx));
}

TEST(Gate, NameRoundTrip)
{
    for (GateKind k : {GateKind::X, GateKind::H, GateKind::Rz,
                       GateKind::Cx, GateKind::Swap, GateKind::Ms,
                       GateKind::Measure}) {
        EXPECT_EQ(gateKindFromName(gateName(k)), k);
    }
}

TEST(Gate, NameAliases)
{
    EXPECT_EQ(gateKindFromName("CNOT"), GateKind::Cx);
    EXPECT_EQ(gateKindFromName("rxx"), GateKind::Ms);
    EXPECT_EQ(gateKindFromName("u1"), GateKind::Rz);
}

TEST(Gate, UnknownNameIsFatal)
{
    EXPECT_THROW(gateKindFromName("frobnicate"), std::runtime_error);
}

TEST(Gate, PartnerOf)
{
    const Gate g(GateKind::Cx, 3, 7);
    EXPECT_EQ(g.partnerOf(3), 7);
    EXPECT_EQ(g.partnerOf(7), 3);
    EXPECT_TRUE(g.touches(3));
    EXPECT_FALSE(g.touches(4));
}

TEST(Circuit, BuildersAppendInOrder)
{
    Circuit qc(3, "t");
    qc.h(0);
    qc.cx(0, 1);
    qc.cz(1, 2);
    ASSERT_EQ(qc.size(), 3u);
    EXPECT_EQ(qc[0].kind, GateKind::H);
    EXPECT_EQ(qc[1].kind, GateKind::Cx);
    EXPECT_EQ(qc[2].q1, 2);
}

TEST(Circuit, RejectsOutOfRangeOperand)
{
    Circuit qc(2);
    EXPECT_THROW(qc.cx(0, 5), std::logic_error);
    EXPECT_THROW(qc.h(-1), std::logic_error);
}

TEST(Circuit, RejectsSelfInteraction)
{
    Circuit qc(2);
    EXPECT_THROW(qc.cx(1, 1), std::logic_error);
}

TEST(Circuit, Counts)
{
    Circuit qc(3);
    qc.h(0);
    qc.cx(0, 1);
    qc.cx(1, 2);
    qc.rz(2, 0.5);
    qc.measure(0);
    EXPECT_EQ(qc.twoQubitCount(), 2);
    EXPECT_EQ(qc.singleQubitCount(), 2);
}

TEST(Circuit, ReversedFlipsOrder)
{
    Circuit qc(2);
    qc.h(0);
    qc.cx(0, 1);
    const Circuit rev = qc.reversed();
    ASSERT_EQ(rev.size(), 2u);
    EXPECT_EQ(rev[0].kind, GateKind::Cx);
    EXPECT_EQ(rev[1].kind, GateKind::H);
}

TEST(Circuit, SwapLoweringProducesThreeCx)
{
    Circuit qc(2);
    qc.swap(0, 1);
    const Circuit lowered = qc.withSwapsDecomposed();
    ASSERT_EQ(lowered.size(), 3u);
    for (const Gate &g : lowered.gates())
        EXPECT_EQ(g.kind, GateKind::Cx);
    // Alternating direction: 01, 10, 01.
    EXPECT_EQ(lowered[0].q0, 0);
    EXPECT_EQ(lowered[1].q0, 1);
    EXPECT_EQ(lowered[2].q0, 0);
}

TEST(Circuit, SwapLoweringKeepsOtherGates)
{
    Circuit qc(3);
    qc.h(0);
    qc.swap(1, 2);
    qc.cx(0, 2);
    const Circuit lowered = qc.withSwapsDecomposed();
    EXPECT_EQ(lowered.size(), 5u);
    EXPECT_EQ(lowered.twoQubitCount(), 4);
}

TEST(Circuit, StatsDepthCountsTwoQubitLayers)
{
    Circuit qc(4);
    // Two parallel gates then one dependent gate: depth 2.
    qc.cx(0, 1);
    qc.cx(2, 3);
    qc.cx(1, 2);
    const CircuitStats s = qc.stats();
    EXPECT_EQ(s.depth, 2);
    EXPECT_EQ(s.twoQubitGates, 3);
    EXPECT_EQ(s.numQubits, 4);
}

TEST(Circuit, StatsInteractionDistance)
{
    Circuit qc(10);
    qc.cx(0, 9); // distance 9
    qc.cx(4, 5); // distance 1
    EXPECT_NEAR(qc.stats().avgInteractionDistance, 5.0, 1e-12);
}

TEST(Circuit, TwoQubitDegrees)
{
    Circuit qc(3);
    qc.cx(0, 1);
    qc.cx(0, 2);
    const auto deg = qc.twoQubitDegrees();
    EXPECT_EQ(deg[0], 2);
    EXPECT_EQ(deg[1], 1);
    EXPECT_EQ(deg[2], 1);
}

TEST(Circuit, NeedsPositiveQubits)
{
    EXPECT_THROW(Circuit(0), std::runtime_error);
}

// ---- prefix-hash chain (the delta-compile cache key) -----------------

TEST(Circuit, PrefixHashStableUnderAppend)
{
    // Appending gates must never disturb the hashes of prefixes
    // already in the chain — the property that lets a snapshot cache
    // key survive the circuit growing underneath it.
    Circuit qc(3, "chain");
    qc.h(0);
    qc.cx(0, 1);
    const std::uint64_t h0 = qc.prefixHash(0);
    const std::uint64_t h1 = qc.prefixHash(1);
    const std::uint64_t h2 = qc.prefixHash(2);
    qc.rz(2, 0.5);
    qc.cx(1, 2);
    qc.measure(0);
    EXPECT_EQ(qc.prefixHash(0), h0);
    EXPECT_EQ(qc.prefixHash(1), h1);
    EXPECT_EQ(qc.prefixHash(2), h2);
}

TEST(Circuit, ContentHashIsLastPrefixHash)
{
    Circuit qc(2, "full");
    qc.h(0);
    qc.cx(0, 1);
    qc.rz(1, 0.25);
    EXPECT_EQ(qc.contentHash(), qc.prefixHash(qc.size()));
}

TEST(Circuit, PrefixHashDivergesExactlyAtEdit)
{
    // Two circuits differing in one gate parameter (or operand) agree
    // on every prefix up to the edit and on none from it onward — the
    // chain localises the edit point exactly.
    Circuit a(3, "edit");
    a.h(0);
    a.cx(0, 1);
    a.rz(1, 0.50);
    a.cx(1, 2);

    // `param` changes only the rz angle, `operand` only its target.
    Circuit param(3, "edit");
    param.h(0);
    param.cx(0, 1);
    param.rz(1, 0.75);
    param.cx(1, 2);
    Circuit operand(3, "edit");
    operand.h(0);
    operand.cx(0, 1);
    operand.rz(2, 0.50);
    operand.cx(1, 2);

    for (const Circuit *edited : {&param, &operand}) {
        for (std::size_t p = 0; p <= 2; ++p)
            EXPECT_EQ(edited->prefixHash(p), a.prefixHash(p))
                << "shared prefix length " << p;
        for (std::size_t p = 3; p <= 4; ++p)
            EXPECT_NE(edited->prefixHash(p), a.prefixHash(p))
                << "post-edit prefix length " << p;
    }
}

} // namespace
} // namespace mussti
