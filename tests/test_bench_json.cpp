/**
 * @file
 * Perf-harness smoke tests: the bench-results JSON (the format
 * micro_scheduler_bench and fig10_compile_time emit, and the repo's
 * BENCH_*.json trajectory) must be emitted to disk and round-trip
 * through the bundled parser without loss.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "common/bench_json.h"
#include "core/compiler.h"
#include "workloads/workloads.h"

namespace mussti {
namespace {

std::vector<BenchRecord>
sampleRecords()
{
    BenchRecord a;
    a.suite = "micro_scheduler/large";
    a.name = "qaoa";
    a.qubits = 288;
    a.repeats = 5;
    a.wallMs = 4.125;
    a.speedupVsBaseline = 12.5;
    a.passTrace = {{"lower-swaps", 0.01}, {"mussti-schedule", 1.25},
                   {"sabre-two-fold", 2.5}};
    a.routingSteps = 4321;
    a.steadyAllocs = 0;

    BenchRecord b; // no baseline, no trace, no scheduler counters
    b.suite = "fig10_compile_time";
    b.name = "bv";
    b.qubits = 160;
    b.repeats = 1;
    b.wallMs = 0.25;

    BenchRecord c; // a device-tuner sweep row with score fields
    c.suite = "device_tuner/qaoa_n96";
    c.name = "eml:cap=16,storage=2,op=1,optical=1,modules=3,maxq=32";
    c.qubits = 96;
    c.repeats = 1;
    c.wallMs = 0.75;
    c.shuttles = 132;
    c.makespanUs = 86780.0;
    c.log10Fidelity = -9.875;

    BenchRecord d; // a delta-recompilation row with cache counters
    d.suite = "micro_scheduler/delta";
    d.name = "ising-append";
    d.qubits = 64;
    d.repeats = 5;
    d.wallMs = 6.5;
    d.routingSteps = 2048;
    d.steadyAllocs = 0;
    d.deltaColdMs = 36.25;
    d.deltaSpeedup = 5.5769; // %.6g emitter: keep within 6 sig figs
    d.snapshotHits = 1;
    d.snapshotMisses = 1;
    d.deltaResumes = 1;
    d.deltaFallbacks = 0;

    BenchRecord e; // a cache-tier row with per-tier result counters
    e.suite = "micro_scheduler/cache";
    e.name = "ising-disk-warm";
    e.qubits = 96;
    e.repeats = 1;
    e.wallMs = 0.375;
    e.cacheMemHits = 1;
    e.cacheMemMisses = 1;
    e.cacheMemEvictions = 0;
    e.cacheDiskHits = 1;
    e.cacheDiskMisses = 0;
    e.cacheDiskEvictions = 2;
    e.cacheDiskCorrupt = 1;
    return {a, b, c, d, e};
}

void
expectSameRecords(const std::vector<BenchRecord> &x,
                  const std::vector<BenchRecord> &y)
{
    ASSERT_EQ(x.size(), y.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
        EXPECT_EQ(x[i].suite, y[i].suite);
        EXPECT_EQ(x[i].name, y[i].name);
        EXPECT_EQ(x[i].qubits, y[i].qubits);
        EXPECT_EQ(x[i].repeats, y[i].repeats);
        EXPECT_NEAR(x[i].wallMs, y[i].wallMs, 1e-9);
        EXPECT_NEAR(x[i].speedupVsBaseline, y[i].speedupVsBaseline,
                    1e-9);
        EXPECT_EQ(x[i].routingSteps, y[i].routingSteps);
        EXPECT_EQ(x[i].steadyAllocs, y[i].steadyAllocs);
        EXPECT_EQ(x[i].shuttles, y[i].shuttles);
        EXPECT_NEAR(x[i].makespanUs, y[i].makespanUs, 1e-9);
        EXPECT_NEAR(x[i].log10Fidelity, y[i].log10Fidelity, 1e-9);
        EXPECT_NEAR(x[i].deltaColdMs, y[i].deltaColdMs, 1e-9);
        EXPECT_NEAR(x[i].deltaSpeedup, y[i].deltaSpeedup, 1e-9);
        EXPECT_EQ(x[i].snapshotHits, y[i].snapshotHits);
        EXPECT_EQ(x[i].snapshotMisses, y[i].snapshotMisses);
        EXPECT_EQ(x[i].deltaResumes, y[i].deltaResumes);
        EXPECT_EQ(x[i].deltaFallbacks, y[i].deltaFallbacks);
        EXPECT_EQ(x[i].cacheMemHits, y[i].cacheMemHits);
        EXPECT_EQ(x[i].cacheMemMisses, y[i].cacheMemMisses);
        EXPECT_EQ(x[i].cacheMemEvictions, y[i].cacheMemEvictions);
        EXPECT_EQ(x[i].cacheDiskHits, y[i].cacheDiskHits);
        EXPECT_EQ(x[i].cacheDiskMisses, y[i].cacheDiskMisses);
        EXPECT_EQ(x[i].cacheDiskEvictions, y[i].cacheDiskEvictions);
        EXPECT_EQ(x[i].cacheDiskCorrupt, y[i].cacheDiskCorrupt);
        ASSERT_EQ(x[i].passTrace.size(), y[i].passTrace.size());
        for (std::size_t j = 0; j < x[i].passTrace.size(); ++j) {
            EXPECT_EQ(x[i].passTrace[j].pass, y[i].passTrace[j].pass);
            EXPECT_NEAR(x[i].passTrace[j].ms, y[i].passTrace[j].ms,
                        1e-9);
        }
    }
}

TEST(BenchJson, RoundTripsThroughText)
{
    const auto records = sampleRecords();
    std::string context;
    const auto reparsed = parseBenchResults(
        benchResultsToJson(records, "unit-test run"), &context);
    EXPECT_EQ(context, "unit-test run");
    expectSameRecords(records, reparsed);
}

TEST(BenchJson, EmitsAndRoundTripsThroughAFile)
{
    const std::string path = ::testing::TempDir() + "bench_results.json";
    writeBenchResults(path, sampleRecords(), "file round-trip");

    std::ifstream probe(path);
    ASSERT_TRUE(probe.good()) << "bench_results.json was not emitted";

    const auto reparsed = readBenchResults(path);
    expectSameRecords(sampleRecords(), reparsed);
    std::remove(path.c_str());
}

TEST(BenchJson, CompileResultPassTraceRoundTrips)
{
    // End-to-end: a real compilation's pass trace survives the JSON
    // round trip — the property the perf harness depends on.
    const auto result = MusstiCompiler().compile(makeBenchmark("ghz", 32));
    ASSERT_FALSE(result.passTrace.empty());

    BenchRecord record;
    record.suite = "micro_scheduler/smoke";
    record.name = "ghz";
    record.qubits = 32;
    record.wallMs = 1e3 * result.compileTimeSec;
    for (const PassTiming &timing : result.passTrace)
        record.passTrace.push_back({timing.pass, 1e3 * timing.seconds});

    const auto reparsed =
        parseBenchResults(benchResultsToJson({record}, "smoke"));
    ASSERT_EQ(reparsed.size(), 1u);
    ASSERT_EQ(reparsed[0].passTrace.size(), result.passTrace.size());
    for (std::size_t i = 0; i < result.passTrace.size(); ++i)
        EXPECT_EQ(reparsed[0].passTrace[i].pass, result.passTrace[i].pass);
}

TEST(BenchJson, RejectsWrongSchemaAndGarbage)
{
    EXPECT_THROW(parseBenchResults("{\"schema\": \"other-v9\", "
                                   "\"results\": []}"),
                 std::runtime_error);
    EXPECT_THROW(parseBenchResults("not json at all"),
                 std::runtime_error);
    EXPECT_THROW(parseBenchResults("{\"schema\": \"mussti-bench-v1\""),
                 std::runtime_error); // truncated
}

TEST(BenchJson, ToleratesUnknownKeysIncludingLiterals)
{
    // Forward compatibility: unknown keys of any value shape —
    // including bare true/false/null — are skipped, not fatal.
    const auto records = parseBenchResults(
        "{\"schema\": \"mussti-bench-v1\", \"extra\": {\"nested\": [1, "
        "true, null]}, \"results\": [{\"suite\": \"s\", \"name\": "
        "\"n\", \"qubits\": 4, \"wall_ms\": 1.5, \"quick\": true, "
        "\"note\": null}]}");
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].suite, "s");
    EXPECT_NEAR(records[0].wallMs, 1.5, 1e-12);
}

TEST(BenchJson, UnicodeEscapesDecodeToUtf8)
{
    // ISSUE-5 regression: `\u` code points above 0x7F used to be
    // truncated by a char cast into a mangled byte. They must decode
    // to proper UTF-8 now (1-3 bytes across the BMP ranges).
    std::string context;
    (void)parseBenchResults(
        "{\"schema\": \"mussti-bench-v1\", \"context\": "
        "\"\\u0041\\u00e9\\u20ac\", \"results\": []}",
        &context);
    EXPECT_EQ(context, "A\xc3\xa9\xe2\x82\xac");
}

TEST(BenchJson, MalformedUnicodeEscapesAreRejected)
{
    const auto doc = [](const std::string &escape) {
        return "{\"schema\": \"mussti-bench-v1\", \"context\": \"" +
               escape + "\", \"results\": []}";
    };
    // Non-hex characters anywhere in the 4 digits.
    EXPECT_THROW(parseBenchResults(doc("\\u12g4")), std::runtime_error);
    // stoi's prefix semantics used to accept whitespace and sign forms.
    EXPECT_THROW(parseBenchResults(doc("\\u 041")), std::runtime_error);
    EXPECT_THROW(parseBenchResults(doc("\\u+041")), std::runtime_error);
    EXPECT_THROW(parseBenchResults(doc("\\u-041")), std::runtime_error);
    // Unpaired surrogate halves are not characters.
    EXPECT_THROW(parseBenchResults(doc("\\ud800")), std::runtime_error);
    // Truncated escape at end of input.
    EXPECT_THROW(parseBenchResults(doc("\\u00")), std::runtime_error);
}

TEST(BenchJson, SpecialCharactersInContextSurvive)
{
    const auto records = sampleRecords();
    std::string context;
    (void)parseBenchResults(
        benchResultsToJson(records, "quote \" backslash \\ tab \t"),
        &context);
    EXPECT_EQ(context, "quote \" backslash \\ tab \t");
}

} // namespace
} // namespace mussti
