/**
 * @file
 * Perf-harness smoke tests: the bench-results JSON (the format
 * micro_scheduler_bench and fig10_compile_time emit, and the repo's
 * BENCH_*.json trajectory) must be emitted to disk and round-trip
 * through the bundled parser without loss.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "common/bench_json.h"
#include "core/compiler.h"
#include "workloads/workloads.h"

namespace mussti {
namespace {

std::vector<BenchRecord>
sampleRecords()
{
    BenchRecord a;
    a.suite = "micro_scheduler/large";
    a.name = "qaoa";
    a.qubits = 288;
    a.repeats = 5;
    a.wallMs = 4.125;
    a.speedupVsBaseline = 12.5;
    a.passTrace = {{"lower-swaps", 0.01}, {"mussti-schedule", 1.25},
                   {"sabre-two-fold", 2.5}};
    a.routingSteps = 4321;
    a.steadyAllocs = 0;

    BenchRecord b; // no baseline, no trace, no scheduler counters
    b.suite = "fig10_compile_time";
    b.name = "bv";
    b.qubits = 160;
    b.repeats = 1;
    b.wallMs = 0.25;
    return {a, b};
}

void
expectSameRecords(const std::vector<BenchRecord> &x,
                  const std::vector<BenchRecord> &y)
{
    ASSERT_EQ(x.size(), y.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
        EXPECT_EQ(x[i].suite, y[i].suite);
        EXPECT_EQ(x[i].name, y[i].name);
        EXPECT_EQ(x[i].qubits, y[i].qubits);
        EXPECT_EQ(x[i].repeats, y[i].repeats);
        EXPECT_NEAR(x[i].wallMs, y[i].wallMs, 1e-9);
        EXPECT_NEAR(x[i].speedupVsBaseline, y[i].speedupVsBaseline,
                    1e-9);
        EXPECT_EQ(x[i].routingSteps, y[i].routingSteps);
        EXPECT_EQ(x[i].steadyAllocs, y[i].steadyAllocs);
        ASSERT_EQ(x[i].passTrace.size(), y[i].passTrace.size());
        for (std::size_t j = 0; j < x[i].passTrace.size(); ++j) {
            EXPECT_EQ(x[i].passTrace[j].pass, y[i].passTrace[j].pass);
            EXPECT_NEAR(x[i].passTrace[j].ms, y[i].passTrace[j].ms,
                        1e-9);
        }
    }
}

TEST(BenchJson, RoundTripsThroughText)
{
    const auto records = sampleRecords();
    std::string context;
    const auto reparsed = parseBenchResults(
        benchResultsToJson(records, "unit-test run"), &context);
    EXPECT_EQ(context, "unit-test run");
    expectSameRecords(records, reparsed);
}

TEST(BenchJson, EmitsAndRoundTripsThroughAFile)
{
    const std::string path = ::testing::TempDir() + "bench_results.json";
    writeBenchResults(path, sampleRecords(), "file round-trip");

    std::ifstream probe(path);
    ASSERT_TRUE(probe.good()) << "bench_results.json was not emitted";

    const auto reparsed = readBenchResults(path);
    expectSameRecords(sampleRecords(), reparsed);
    std::remove(path.c_str());
}

TEST(BenchJson, CompileResultPassTraceRoundTrips)
{
    // End-to-end: a real compilation's pass trace survives the JSON
    // round trip — the property the perf harness depends on.
    const auto result = MusstiCompiler().compile(makeBenchmark("ghz", 32));
    ASSERT_FALSE(result.passTrace.empty());

    BenchRecord record;
    record.suite = "micro_scheduler/smoke";
    record.name = "ghz";
    record.qubits = 32;
    record.wallMs = 1e3 * result.compileTimeSec;
    for (const PassTiming &timing : result.passTrace)
        record.passTrace.push_back({timing.pass, 1e3 * timing.seconds});

    const auto reparsed =
        parseBenchResults(benchResultsToJson({record}, "smoke"));
    ASSERT_EQ(reparsed.size(), 1u);
    ASSERT_EQ(reparsed[0].passTrace.size(), result.passTrace.size());
    for (std::size_t i = 0; i < result.passTrace.size(); ++i)
        EXPECT_EQ(reparsed[0].passTrace[i].pass, result.passTrace[i].pass);
}

TEST(BenchJson, RejectsWrongSchemaAndGarbage)
{
    EXPECT_THROW(parseBenchResults("{\"schema\": \"other-v9\", "
                                   "\"results\": []}"),
                 std::runtime_error);
    EXPECT_THROW(parseBenchResults("not json at all"),
                 std::runtime_error);
    EXPECT_THROW(parseBenchResults("{\"schema\": \"mussti-bench-v1\""),
                 std::runtime_error); // truncated
}

TEST(BenchJson, ToleratesUnknownKeysIncludingLiterals)
{
    // Forward compatibility: unknown keys of any value shape —
    // including bare true/false/null — are skipped, not fatal.
    const auto records = parseBenchResults(
        "{\"schema\": \"mussti-bench-v1\", \"extra\": {\"nested\": [1, "
        "true, null]}, \"results\": [{\"suite\": \"s\", \"name\": "
        "\"n\", \"qubits\": 4, \"wall_ms\": 1.5, \"quick\": true, "
        "\"note\": null}]}");
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].suite, "s");
    EXPECT_NEAR(records[0].wallMs, 1.5, 1e-12);
}

TEST(BenchJson, SpecialCharactersInContextSurvive)
{
    const auto records = sampleRecords();
    std::string context;
    (void)parseBenchResults(
        benchResultsToJson(records, "quote \" backslash \\ tab \t"),
        &context);
    EXPECT_EQ(context, "quote \" backslash \\ tab \t");
}

} // namespace
} // namespace mussti
