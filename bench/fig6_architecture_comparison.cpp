/**
 * @file
 * Reproduces Fig 6: shuttle count (top row), execution time (middle
 * row), and fidelity (bottom row) for MUSS-TI vs the QCCD baselines
 * [55] and [13] across the small (2x2), medium (3x4), and large (4x5)
 * suites.
 */
#include <future>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "common/stats.h"

using namespace mussti;
using namespace mussti::bench;

namespace {

/** All compilations of one suite row, in flight concurrently. */
struct RowJobs
{
    BenchmarkSpec spec;
    std::future<CompileResult> ours;
    std::future<CompileResult> dai;
    std::future<CompileResult> murali;
};

void
runSuite(const std::string &label,
         const std::vector<BenchmarkSpec> &suite, const GridConfig &grid,
         bool fidelity_row)
{
    std::cout << "\n--- " << label << " (grid " << grid.width << "x"
              << grid.height << ", trap capacity " << grid.trapCapacity
              << ") ---\n";
    TextTable table;
    std::vector<std::string> header{"Application",
                                    "Shuttle(MUSS-TI)", "Shuttle[13]",
                                    "Shuttle[55]", "Time(MUSS-TI)",
                                    "Time[13]", "Time[55]"};
    if (fidelity_row) {
        header.insert(header.end(), {"Fid(MUSS-TI)", "Fid[13]",
                                     "Fid[55]"});
    }
    table.setHeader(header);

    std::vector<double> murali_shuttles, ours_shuttles;
    std::vector<double> murali_times, ours_times;

    // Fan the whole suite out through the compile service, then collect
    // rows in order.
    std::vector<RowJobs> jobs;
    jobs.reserve(suite.size());
    for (const auto &spec : suite) {
        const Circuit qc = makeBenchmark(spec.family, spec.numQubits);
        jobs.push_back({spec, submitMussti(qc),
                        submitBaseline("dai", qc, grid),
                        submitBaseline("murali", qc, grid)});
    }

    for (auto &job : jobs) {
        const auto &spec = job.spec;
        const auto ours = job.ours.get();
        const auto dai = job.dai.get();
        const auto murali = job.murali.get();

        std::vector<std::string> row{
            spec.label(),
            intCell(ours.metrics.shuttleCount),
            intCell(dai.metrics.shuttleCount),
            intCell(murali.metrics.shuttleCount),
            timeCell(ours.metrics.executionTimeUs),
            timeCell(dai.metrics.executionTimeUs),
            timeCell(murali.metrics.executionTimeUs)};
        if (fidelity_row) {
            row.push_back(fidelityCell(ours.metrics));
            row.push_back(fidelityCell(dai.metrics));
            row.push_back(fidelityCell(murali.metrics));
        }
        table.addRow(row);

        murali_shuttles.push_back(murali.metrics.shuttleCount);
        ours_shuttles.push_back(ours.metrics.shuttleCount);
        murali_times.push_back(murali.metrics.executionTimeUs);
        ours_times.push_back(ours.metrics.executionTimeUs);
    }
    table.print(std::cout);
    std::cout << "Shuttle reduction vs [55]: "
              << averageReductionPercent(murali_shuttles, ours_shuttles)
              << "%\n";
    std::cout << "Execution-time reduction vs [55]: "
              << averageReductionPercent(murali_times, ours_times)
              << "%\n";
}

} // namespace

int
main()
{
    printHeader("Figure 6",
                "Architectural comparison across application scales "
                "(paper: 41.74% / 73.38% / 59.82% shuttle reductions)");
    // The paper omits QFT fidelity at medium/large scale; our suites
    // only include QFT at small scale, matching Fig 6's x-axes.
    runSuite("Small scale (30-32 qubits)", smallScaleSuite(),
             smallGrid(), true);
    runSuite("Medium scale (117-128 qubits)", mediumScaleSuite(),
             mediumGrid(), true);
    runSuite("Large scale (256-299 qubits)", largeScaleSuite(),
             largeGrid(), true);
    return 0;
}
