/**
 * @file
 * Reproduces Fig 11: compilation time versus final fidelity for the
 * four technique arms, on a complex app (SQRT_n128) and a simple app
 * (BV_n128). Paper shape: SWAP Insert + SABRE reaches the highest
 * fidelity at the highest compile time.
 */
#include <iostream>

#include "bench_common.h"

using namespace mussti;
using namespace mussti::bench;

int
main()
{
    printHeader("Figure 11",
                "Compilation time vs fidelity trade-off per technique");
    const std::vector<BenchmarkSpec> apps = {{"sqrt", 128}, {"bv", 128}};

    for (const auto &spec : apps) {
        std::cout << "\n--- " << spec.label() << " ---\n";
        TextTable table;
        table.setHeader({"Technique", "CompileTime(s)",
                         "log10(Fidelity)"});
        struct Arm { const char *name; bool sabre; bool swap_insert; };
        const Arm arms[4] = {
            {"Trivial", false, false},
            {"SWAP Insert", false, true},
            {"SABRE", true, false},
            {"SWAP Insert + SABRE", true, true},
        };
        const Circuit qc = makeBenchmark(spec.family, spec.numQubits);
        for (const Arm &armv : arms) {
            MusstiConfig config;
            config.mapping = armv.sabre ? MappingKind::Sabre
                                        : MappingKind::Trivial;
            config.enableSwapInsertion = armv.swap_insert;
            const auto result = runMussti(qc, config);
            char time_cell[32], fid_cell[32];
            std::snprintf(time_cell, sizeof(time_cell), "%.4f",
                          result.compileTimeSec);
            std::snprintf(fid_cell, sizeof(fid_cell), "%.2f",
                          result.metrics.log10Fidelity());
            table.addRow({armv.name, time_cell, fid_cell});
        }
        table.print(std::cout);
    }
    std::cout << "\nPaper: the combined strategy is slowest to compile "
                 "and best in fidelity on both apps.\n";
    return 0;
}
