/**
 * @file
 * Extension study (the paper's Outlook section): surface-code syndrome
 * extraction on EML-QCCD. Sweeps code distance, compares MUSS-TI on
 * the EML device against the grid baselines, and reports the per-round
 * logical-cycle cost — the first-order feasibility numbers for QEC on
 * this architecture.
 */
#include <iostream>

#include "bench_common.h"

using namespace mussti;
using namespace mussti::bench;

int
main()
{
    printHeader("Extension: QEC outlook",
                "Surface-code syndrome extraction (2 rounds) on "
                "EML-QCCD vs grid QCCD");
    TextTable table;
    table.setHeader({"Distance", "Qubits", "CX", "Shut(MUSS-TI)",
                     "Shut[55]", "Time(MUSS-TI)", "Time[55]",
                     "F(MUSS-TI)", "F[55]"});

    for (int d : {3, 5, 7, 9}) {
        const Circuit qc = makeSurfaceCodeCycle(d, 2);
        const auto ours = runMussti(qc);

        // Grid sized to hold the code with the paper's 16-ion traps.
        const int traps_needed =
            (qc.numQubits() + 15) / 16 + 1;
        GridConfig grid{(traps_needed + 1) / 2, 2, 16};
        while (grid.width * grid.height * grid.trapCapacity <
               qc.numQubits())
            ++grid.width;
        const auto murali = runBaseline("murali", qc, grid);

        table.addRow({std::to_string(d),
                      std::to_string(qc.numQubits()),
                      std::to_string(qc.twoQubitCount()),
                      intCell(ours.metrics.shuttleCount),
                      intCell(murali.metrics.shuttleCount),
                      timeCell(ours.metrics.executionTimeUs),
                      timeCell(murali.metrics.executionTimeUs),
                      fidelityCell(ours.metrics),
                      fidelityCell(murali.metrics)});
    }
    table.print(std::cout);
    std::cout << "Outlook workload: stabilizer locality maps well onto "
                 "modules; shuttle cost per round is the quantity QEC "
                 "co-design must drive down.\n";
    return 0;
}
