/**
 * @file
 * Extension study (beyond the paper's figures): heterogeneous EML
 * module mixes. The paper's EML device gives every module an identical
 * 2-storage / 1-operation / 1-optical layout; the DeviceRegistry's
 * `eml:hetero=...` specs let modules differ, so this bench asks the
 * co-design question the paper never ran: at a fixed trap capacity,
 * does enriching one hub module (extra optical or operation zones)
 * beat the symmetric device?
 *
 * All compilations fan out through the shared CompileService; devices
 * are selected purely by spec string, exercising the same parsing path
 * as compile_cli.
 */
#include <future>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"

using namespace mussti;
using namespace mussti::bench;

namespace {

/** Uniform 2.1.1 modules at capacity 16, with one enriched hub. */
std::string
hubSpec(int modules, int hub, const EmlModuleMix &hub_mix)
{
    std::vector<EmlModuleMix> mixes(modules);
    if (hub >= 0 && hub < modules)
        mixes[hub] = hub_mix;
    return DeviceRegistry::heteroSpec(mixes, 16);
}

} // namespace

int
main()
{
    printHeader("Extension: heterogeneous EML modules",
                "Per-module zone mixes (eml:hetero=... specs) vs the "
                "paper's uniform device");

    const std::vector<std::pair<const char *, int>> apps = {
        {"bv", 128}, {"ghz", 128}, {"qaoa", 96}, {"adder", 128}};

    struct Variant
    {
        const char *label;
        std::string (*spec)(int modules);
    };
    const Variant variants[] = {
        {"uniform 2.1.1", [](int m) { return hubSpec(m, -1, {}); }},
        {"optical hub 2.1.2",
         [](int m) { return hubSpec(m, 0, {2, 1, 2}); }},
        {"operation hub 2.2.1",
         [](int m) { return hubSpec(m, 0, {2, 2, 1}); }},
        {"fat middle 3.1.2",
         [](int m) { return hubSpec(m, m / 2, {3, 1, 2}); }},
    };

    // Fan the whole grid of (app, variant) jobs out up front.
    std::vector<std::future<CompileResult>> futures;
    for (const auto &[family, qubits] : apps) {
        const Circuit qc = makeBenchmark(family, qubits);
        for (const Variant &variant : variants) {
            const int modules = (qubits + 31) / 32;
            futures.push_back(
                submitMusstiOnSpec(qc, variant.spec(modules)));
        }
    }

    TextTable table;
    table.setHeader({"Application", "ModuleMix", "Shuttles", "Fiber",
                     "Time(us)", "log10(F)"});
    std::size_t next = 0;
    for (const auto &[family, qubits] : apps) {
        for (const Variant &variant : variants) {
            const auto result = futures[next++].get();
            std::ostringstream name;
            name << family << "_n" << qubits;
            char log10f[32];
            std::snprintf(log10f, sizeof(log10f), "%.2f",
                          result.metrics.log10Fidelity());
            table.addRow({name.str(), variant.label,
                          intCell(result.metrics.shuttleCount),
                          intCell(result.metrics.fiberGateCount),
                          timeCell(result.metrics.executionTimeUs),
                          log10f});
        }
    }
    table.print(std::cout);
    std::cout << "Mixes are storage.operation.optical per module; the "
                 "hub is module 0 (or the center for `fat middle`).\n"
                 "Specs parse through the DeviceRegistry — any mix the "
                 "grammar expresses can join the sweep.\n";
    return 0;
}
