/**
 * @file
 * Reproduces Table 2: small-scale comparison of shuttle count,
 * execution time, and fidelity for [55] (Murali), [13] (Dai), [70]
 * (MQT-like), and MUSS-TI, on Grid 2x2 (capacity 12) and Grid 2x3
 * (capacity 8), over the 30-32 qubit suite.
 */
#include <algorithm>
#include <future>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "common/stats.h"

using namespace mussti;
using namespace mussti::bench;

namespace {

void
runStructure(const std::string &label, const GridConfig &grid,
             const EmlConfig &eml)
{
    std::cout << "\n--- Structure: " << label << " (trap capacity "
              << grid.trapCapacity << ") ---\n";
    TextTable table;
    table.setHeader({"Application",
                     "Shut[55]", "Shut[13]", "Shut[70]", "ShutOurs",
                     "Time[55]", "Time[13]", "Time[70]", "TimeOurs",
                     "Fid[55]", "Fid[13]", "Fid[70]", "FidOurs"});

    std::vector<double> base_shuttles, our_shuttles;
    std::vector<double> base_times, our_times;

    // All four compilers x all apps submitted up front; collected in
    // table order.
    struct RowJobs
    {
        BenchmarkSpec spec;
        std::future<CompileResult> murali, dai, mqt, ours;
    };
    std::vector<RowJobs> jobs;
    for (const auto &spec : smallScaleSuite()) {
        const Circuit qc = makeBenchmark(spec.family, spec.numQubits);
        MusstiConfig config;
        config.device = eml;
        jobs.push_back({spec,
                        submitBaseline("murali", qc, grid),
                        submitBaseline("dai", qc, grid),
                        submitBaseline("mqt", qc, grid),
                        submitMussti(qc, config)});
    }

    for (auto &job : jobs) {
        const auto &spec = job.spec;
        const auto murali = job.murali.get();
        const auto dai = job.dai.get();
        const auto mqt = job.mqt.get();
        const auto ours = job.ours.get();

        table.addRow({spec.label(),
                      intCell(murali.metrics.shuttleCount),
                      intCell(dai.metrics.shuttleCount),
                      intCell(mqt.metrics.shuttleCount),
                      intCell(ours.metrics.shuttleCount),
                      timeCell(murali.metrics.executionTimeUs),
                      timeCell(dai.metrics.executionTimeUs),
                      timeCell(mqt.metrics.executionTimeUs),
                      timeCell(ours.metrics.executionTimeUs),
                      fidelityCell(murali.metrics),
                      fidelityCell(dai.metrics),
                      fidelityCell(mqt.metrics),
                      fidelityCell(ours.metrics)});

        base_shuttles.push_back(std::min(
            {static_cast<double>(murali.metrics.shuttleCount),
             static_cast<double>(dai.metrics.shuttleCount),
             static_cast<double>(mqt.metrics.shuttleCount)}));
        our_shuttles.push_back(ours.metrics.shuttleCount);
        base_times.push_back(std::min(murali.metrics.executionTimeUs,
                                      dai.metrics.executionTimeUs));
        our_times.push_back(ours.metrics.executionTimeUs);
    }

    table.print(std::cout);
    std::cout << "Average shuttle reduction vs best baseline: "
              << averageReductionPercent(base_shuttles, our_shuttles)
              << "% (paper: 77.6% on 2x2, 79.45% on 2x3 vs [55])\n";
    std::cout << "Average execution-time reduction vs best baseline: "
              << averageReductionPercent(base_times, our_times)
              << "% (paper: 58.9% small-scale average)\n";
}

} // namespace

int
main()
{
    printHeader("Table 2",
                "Small-scale applications (30-32 qubits): shuttle count, "
                "execution time (us), fidelity");
    // The 12 / 8 trap capacities describe the baseline QCCD grids. The
    // EML module mirrors each structure's zone count: "2x2" = 4 zones
    // (optical, operation, 2 storage) at the paper's MUSS-TI capacity of
    // 16 (section 4); "2x3" = 6 zones (2 optical, 2 operation, 2
    // storage) at capacity 8, keeping 32 gate-zone slots per module.
    EmlConfig eml22;
    eml22.trapCapacity = 16;

    EmlConfig eml23;
    eml23.trapCapacity = 8;
    eml23.numOpticalZones = 2;
    eml23.numOperationZones = 2;
    eml23.numStorageZones = 2;

    runStructure("Grid 2x2", smallGrid22(), eml22);
    runStructure("Grid 2x3", smallGrid23(), eml23);
    return 0;
}
