/**
 * @file
 * Reproduces Fig 13: optimality analysis. MUSS-TI under real physics
 * versus two idealized regimes — perfect gate (two-qubit fidelity fixed
 * at 0.9999) and perfect shuttle (no motional heating). Paper shape:
 * MUSS-TI approaches both bounds; the perfect-gate bound usually gives
 * the larger uplift.
 */
#include <iostream>

#include "bench_common.h"

using namespace mussti;
using namespace mussti::bench;

int
main()
{
    printHeader("Figure 13",
                "Optimality analysis: perfect gate / perfect shuttle / "
                "MUSS-TI (log10 fidelity)");
    const std::vector<BenchmarkSpec> apps = {
        {"adder", 128}, {"bv", 128}, {"ghz", 128}, {"qaoa", 128},
        {"sqrt", 117},
        {"adder", 298}, {"bv", 298}, {"ghz", 298}, {"qaoa", 298},
        {"sqrt", 299},
    };

    TextTable table;
    table.setHeader({"Application", "PerfectGate", "PerfectShuttle",
                     "MUSS-TI", "biggerUplift"});

    int gate_uplift_wins = 0;
    for (const auto &spec : apps) {
        const Circuit qc = makeBenchmark(spec.family, spec.numQubits);

        PhysicalParams real_params;
        PhysicalParams pg_params;
        pg_params.perfectGate = true;
        PhysicalParams ps_params;
        ps_params.perfectShuttle = true;

        const MusstiConfig config;
        const auto real = runMussti(qc, config, real_params);
        const auto pg = runMussti(qc, config, pg_params);
        const auto ps = runMussti(qc, config, ps_params);

        char pg_cell[32], ps_cell[32], real_cell[32];
        std::snprintf(pg_cell, sizeof(pg_cell), "%.1f",
                      pg.metrics.log10Fidelity());
        std::snprintf(ps_cell, sizeof(ps_cell), "%.1f",
                      ps.metrics.log10Fidelity());
        std::snprintf(real_cell, sizeof(real_cell), "%.1f",
                      real.metrics.log10Fidelity());
        const bool gate_bigger =
            pg.metrics.lnFidelity >= ps.metrics.lnFidelity;
        gate_uplift_wins += gate_bigger;
        table.addRow({spec.label(), pg_cell, ps_cell, real_cell,
                      gate_bigger ? "gate" : "shuttle"});
    }
    table.print(std::cout);
    std::cout << "Perfect-gate uplift dominates on " << gate_uplift_wins
              << "/" << table.rowCount() << " apps.\n"
              << "Paper section 5.9: gate-light circuits benefit more "
                 "from perfect gates, while circuits with more gates "
                 "(and hence more shuttling) benefit more from perfect "
                 "shuttling -- the pattern in this table.\n";
    return 0;
}
