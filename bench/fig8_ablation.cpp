/**
 * @file
 * Reproduces Fig 8: ablation of the compilation techniques — Trivial,
 * SWAP Insert only, SABRE only, SABRE + SWAP Insert — over the medium
 * and large suites. Paper shape: SABRE+SWAP Insert achieves the highest
 * fidelity; SWAP Insert alone gives only marginal gains over Trivial.
 */
#include <array>
#include <future>
#include <iostream>
#include <vector>

#include "bench_common.h"

using namespace mussti;
using namespace mussti::bench;

namespace {

MusstiConfig
arm(bool sabre, bool swap_insert)
{
    MusstiConfig config;
    config.mapping = sabre ? MappingKind::Sabre : MappingKind::Trivial;
    config.enableSwapInsertion = swap_insert;
    return config;
}

} // namespace

int
main()
{
    printHeader("Figure 8",
                "Ablation of compilation techniques (log10 fidelity)");
    TextTable table;
    table.setHeader({"Application", "Trivial", "SWAPInsert", "SABRE",
                     "SABRE+SWAP", "bestArm"});

    auto apps = mediumScaleSuite();
    const auto large = largeScaleSuite();
    apps.insert(apps.end(), large.begin(), large.end());

    const char *names[4] = {"Trivial", "SWAPInsert", "SABRE",
                            "SABRE+SWAP"};
    const MusstiConfig configs[4] = {
        arm(false, false), arm(false, true), arm(true, false),
        arm(true, true)};

    // Fan out all apps x all arms through the compile service up front.
    std::vector<std::array<std::future<CompileResult>, 4>> jobs;
    jobs.reserve(apps.size());
    for (const auto &spec : apps) {
        const Circuit qc = makeBenchmark(spec.family, spec.numQubits);
        jobs.push_back({submitMussti(qc, configs[0]),
                        submitMussti(qc, configs[1]),
                        submitMussti(qc, configs[2]),
                        submitMussti(qc, configs[3])});
    }

    int combined_wins = 0;
    for (std::size_t a = 0; a < apps.size(); ++a) {
        const auto &spec = apps[a];
        std::vector<std::string> row{spec.label()};
        double best = -1e300;
        int best_arm = 0;
        for (int i = 0; i < 4; ++i) {
            const auto result = jobs[a][i].get();
            char cell[32];
            std::snprintf(cell, sizeof(cell), "%.1f",
                          result.metrics.log10Fidelity());
            row.push_back(cell);
            if (result.metrics.lnFidelity > best) {
                best = result.metrics.lnFidelity;
                best_arm = i;
            }
        }
        row.push_back(names[best_arm]);
        combined_wins += best_arm == 3 || best_arm == 2;
        table.addRow(row);
    }
    table.print(std::cout);
    std::cout << "Arms with SABRE win on " << combined_wins << "/"
              << table.rowCount()
              << " apps (paper: SABRE+SWAP Insert is best overall).\n";
    return 0;
}
