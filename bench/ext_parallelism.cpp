/**
 * @file
 * Extension study (beyond the paper's figures): serial execution time
 * (the paper's metric) versus a resource-aware parallel makespan for
 * the same schedules, across the medium suite. Quantifies how much
 * headroom multi-zone/multi-module overlap leaves on the table and
 * which zone is the bottleneck.
 */
#include <iostream>

#include "bench_common.h"
#include "sim/analyzer.h"
#include "sim/timeline.h"

using namespace mussti;
using namespace mussti::bench;

int
main()
{
    printHeader("Extension: parallelism headroom",
                "Serial time vs resource-aware makespan of MUSS-TI "
                "schedules");
    TextTable table;
    table.setHeader({"Application", "Serial(us)", "Makespan(us)",
                     "Overlap", "BusiestZone(us)", "HottestZoneKind"});

    auto apps = mediumScaleSuite();
    apps.push_back({"sqrt", 299});
    for (const auto &spec : apps) {
        const Circuit qc = makeBenchmark(spec.family, spec.numQubits);
        MusstiConfig config;
        const MusstiCompiler compiler(config);
        const auto result = compiler.compile(qc);
        const auto device = compiler.deviceFor(qc);

        const Timeline timeline(*device);
        const auto t = timeline.replay(result.schedule, qc.numQubits());
        const auto report = analyzeSchedule(
            result.schedule, *device, compiler.params());
        const int hottest = report.hottestZones().front();

        char overlap[32];
        std::snprintf(overlap, sizeof(overlap), "%.2fx",
                      t.parallelism());
        table.addRow({spec.label(), timeCell(t.serialUs),
                      timeCell(t.makespanUs), overlap,
                      timeCell(t.zoneBusyMaxUs),
                      zoneKindName(report.zones[hottest].kind)});
    }
    table.print(std::cout);
    std::cout << "The paper evaluates the serial metric; the makespan "
                 "column shows the additional win available to a "
                 "parallelism-aware runtime (cf. Ovide et al. [60]).\n";
    return 0;
}
