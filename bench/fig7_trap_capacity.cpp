/**
 * @file
 * Reproduces Fig 7: fidelity versus EML-QCCD trap capacity (12-20) for
 * the medium-scale applications plus SQRT_n299. The paper's shape: a
 * fidelity peak at intermediate capacity (roughly 14-18) — small traps
 * shuttle too much, large traps degrade the N^2 two-qubit fidelity.
 */
#include <iostream>

#include "bench_common.h"

using namespace mussti;
using namespace mussti::bench;

int
main()
{
    printHeader("Figure 7",
                "Fidelity (log10) vs trap capacity, medium-scale apps + "
                "SQRT_n299");
    const std::vector<BenchmarkSpec> apps = {
        {"adder", 128}, {"bv", 128}, {"ghz", 128}, {"qaoa", 128},
        {"sqrt", 299},
    };
    const std::vector<int> capacities = {12, 14, 16, 18, 20, 22, 24};

    TextTable table;
    std::vector<std::string> header{"Application"};
    for (int c : capacities)
        header.push_back("cap" + std::to_string(c));
    header.push_back("bestCap");
    table.setHeader(header);

    for (const auto &spec : apps) {
        const Circuit qc = makeBenchmark(spec.family, spec.numQubits);
        std::vector<std::string> row{spec.label()};
        double best_value = -1e300;
        int best_capacity = 0;
        for (int c : capacities) {
            MusstiConfig config;
            config.device.trapCapacity = c;
            const auto result = runMussti(qc, config);
            char cell[32];
            std::snprintf(cell, sizeof(cell), "%.1f",
                          result.metrics.log10Fidelity());
            row.push_back(cell);
            if (result.metrics.lnFidelity > best_value) {
                best_value = result.metrics.lnFidelity;
                best_capacity = c;
            }
        }
        row.push_back(std::to_string(best_capacity));
        table.addRow(row);
    }
    table.print(std::cout);
    std::cout << "Cells are log10(fidelity); paper reports a peak at "
                 "capacity 14-18 for most apps.\n";
    return 0;
}
