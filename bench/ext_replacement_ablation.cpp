/**
 * @file
 * Extension study (beyond the paper's figures): ablation of the
 * conflict-handling replacement policy. The paper motivates its LRU-
 * with-anticipation scheduler by analogy to memory paging (section
 * 3.2); this bench quantifies how much of MUSS-TI's win comes from
 * that choice, comparing anticipatory-LRU / pure LRU / FIFO / random
 * victims on shuttle count and fidelity.
 */
#include <iostream>

#include "bench_common.h"

using namespace mussti;
using namespace mussti::bench;

int
main()
{
    printHeader("Extension: replacement-policy ablation",
                "Shuttle count and log10 fidelity per eviction policy");
    const ReplacementPolicy policies[] = {
        ReplacementPolicy::AnticipatoryLru, ReplacementPolicy::Lru,
        ReplacementPolicy::Fifo, ReplacementPolicy::Random,
    };

    TextTable table;
    std::vector<std::string> header{"Application"};
    for (auto p : policies) {
        header.push_back(std::string("shut:") + replacementPolicyName(p));
    }
    for (auto p : policies)
        header.push_back(std::string("F:") + replacementPolicyName(p));
    table.setHeader(header);

    const std::vector<BenchmarkSpec> apps = {
        {"ghz", 128}, {"qft", 32}, {"adder", 128},
        {"sqrt", 117}, {"ran", 256},
    };
    for (const auto &spec : apps) {
        const Circuit qc = makeBenchmark(spec.family, spec.numQubits);
        std::vector<std::string> row{spec.label()};
        std::vector<std::string> fidelity_cells;
        for (auto policy : policies) {
            MusstiConfig config;
            config.replacement = policy;
            const auto result = runMussti(qc, config);
            row.push_back(intCell(result.metrics.shuttleCount));
            char cell[32];
            std::snprintf(cell, sizeof(cell), "%.1f",
                          result.metrics.log10Fidelity());
            fidelity_cells.push_back(cell);
        }
        row.insert(row.end(), fidelity_cells.begin(),
                   fidelity_cells.end());
        table.addRow(row);
    }
    table.print(std::cout);
    std::cout << "Expected shape: anticipatory-lru <= lru < fifo/random "
                 "in shuttles on streaming workloads.\n";
    return 0;
}
