#include "bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "common/logging.h"
#include "common/string_util.h"

namespace mussti::bench {

std::string
fidelityCell(const Metrics &metrics)
{
    const double f = metrics.fidelity();
    char buf[64];
    if (f >= 1e-3) {
        std::snprintf(buf, sizeof(buf), "%.2f", f);
    } else if (f > 0.0) {
        std::snprintf(buf, sizeof(buf), "%.1e", f);
    } else {
        // Below double range: report via log10 like "1e-340".
        std::snprintf(buf, sizeof(buf), "1e%.0f",
                      metrics.log10Fidelity());
    }
    return buf;
}

std::string
intCell(double value)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", value);
    return buf;
}

std::string
timeCell(double value_us)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", value_us);
    return buf;
}

CompileService &
sharedService()
{
    static CompileService service([] {
        CompileServiceConfig config;
        // Validated parse: garbage, negatives, and zero fall back to
        // hardware concurrency with a warning instead of atoi's silent
        // 0 / accepted negatives.
        config.numThreads = CompileService::parseThreadCount(
            std::getenv("MUSSTI_BENCH_THREADS"));
        return config;
    }());
    return service;
}

std::future<CompileResult>
submitMussti(const Circuit &circuit, const MusstiConfig &config,
             const PhysicalParams &params)
{
    return sharedService().submit(makeMusstiBackend(config, params),
                                  circuit);
}

std::future<CompileResult>
submitBaseline(const std::string &which, const Circuit &circuit,
               const GridConfig &grid, const PhysicalParams &params)
{
    return sharedService().submit(makeGridBackend(which, grid, params),
                                  circuit);
}

CompileResult
runMussti(const Circuit &circuit, const MusstiConfig &config,
          const PhysicalParams &params)
{
    return submitMussti(circuit, config, params).get();
}

std::future<CompileResult>
submitMusstiOnSpec(const Circuit &circuit, const std::string &device_spec,
                   const PhysicalParams &params)
{
    const DeviceSpec spec = DeviceRegistry::parse(device_spec);
    MUSSTI_REQUIRE(spec.family == DeviceFamily::Eml,
                   "submitMusstiOnSpec needs an eml:... spec, got: "
                   << device_spec);
    MusstiConfig config;
    config.device = spec.eml;
    return submitMussti(circuit, config, params);
}

CompileResult
runBaseline(const std::string &which, const Circuit &circuit,
            const GridConfig &grid, const PhysicalParams &params)
{
    return submitBaseline(which, circuit, grid, params).get();
}

GridConfig smallGrid22() { return DeviceRegistry::parse("grid:2x2,cap=12").grid; }
GridConfig smallGrid23() { return DeviceRegistry::parse("grid:3x2,cap=8").grid; }
GridConfig smallGrid()   { return DeviceRegistry::parse("grid:2x2,cap=16").grid; }
GridConfig mediumGrid()  { return DeviceRegistry::parse("grid:4x3,cap=16").grid; }
GridConfig largeGrid()   { return DeviceRegistry::parse("grid:5x4,cap=16").grid; }

void
printHeader(const std::string &experiment, const std::string &description)
{
    std::cout << "==========================================================\n"
              << experiment << "\n" << description << "\n"
              << "MUSS-TI reproduction (paper: MICRO 2025, "
                 "arXiv:2509.25988)\n"
              << "==========================================================\n";
}

} // namespace mussti::bench
