/**
 * @file
 * Scheduler compile-time microbenchmark and the source of the repo's
 * BENCH_*.json trajectory.
 *
 * Times full MUSS-TI compilations (SABRE mapping, paper defaults)
 * across four workload tiers — small (64q), medium (160q), large
 * (288q), huge (576q) — taking the best of N repeats, and emits
 * machine-readable results (common/bench_json.h) including the
 * per-pass trace of the best run. The huge tier runs the heavy
 * families (adder/qaoa) plus a 12-module heterogeneous EML device
 * built through the registry, so both the homogeneous ceil(n/32)
 * topology and the hetero `maxq` path stay covered at scale.
 *
 * A grid_router suite times the grid baseline compilers
 * (murali/dai/mqt) on a registry-spec'd 8x8 grid whose relocation inner
 * loops lean on TargetDevice::hopDistance() — the table-lookup path —
 * so regressions in the shared device layer show up here even when the
 * MUSS-TI tiers are unaffected.
 *
 * ## Allocation accounting
 *
 * This binary overrides the global operator new to count heap
 * allocations into common/alloc_counter.h; the scheduler reports the
 * delta observed inside its main loop. MUSS-TI repeats share one
 * SchedulerWorkspace, so the LAST repeat runs with a warm arena — its
 * count is the steady state, recorded per record as steady_allocs /
 * allocs_per_step and asserted zero by --assert-zero-allocs (the CI
 * gate for the allocation-free hot path).
 *
 * Compilations go straight through the backends, NOT the shared
 * CompileService, so the result cache cannot fake the timings.
 *
 * ## Delta-recompilation tier
 *
 * A micro_scheduler/delta suite measures delta recompilation on deep
 * Ising workloads: the base circuit is scheduled once (untimed) with
 * checkpoint capture on, then an edited variant — one appended Trotter
 * layer, or re-parameterized rz angles in the tail — is scheduled
 * cold and warm (resuming from the base run's snapshots). `wall_ms`
 * is the warm resumed path, `delta_cold_ms`/`delta_speedup` the cold
 * reference and their ratio, both at scheduler level so the numbers
 * isolate the resume machinery. Each record also carries snapshot
 * hit/miss and resume/fallback counters from a CompileService
 * verification pass over the same pair, proving the cache tier above
 * the scheduler actually serves the scenario end to end.
 * --require-delta-speedup X exits non-zero unless the suite's
 * aggregate warm-vs-cold speedup reaches X (self-contained: the cold
 * reference is measured in the same run, no baseline file needed).
 * --soak N re-runs every warm resumed path N extra times with the
 * resume and zero-allocation assertions live on each iteration — a
 * cheap endurance gate for the allocation-free resume path.
 *
 * Usage:
 *   micro_scheduler_bench [--repeats N] [--quick]
 *                         [--out bench_results.json]
 *                         [--baseline old_results.json]
 *                         [--require-speedup X]
 *                         [--require-delta-speedup X]
 *                         [--soak N]
 *                         [--assert-zero-allocs]
 *
 * With --baseline, each record gains speedup_vs_baseline against the
 * matching (suite, name, qubits) entry of the old file, and the summary
 * reports the large and huge tiers' aggregate speedups (summed wall
 * time, so the heavy workloads dominate and sub-millisecond ones don't
 * add noise). --require-speedup X exits non-zero unless BOTH gated
 * tiers reach X and every workload of those tiers has a baseline entry
 * (the CI perf gate; it refuses to pass vacuously).
 */
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include <filesystem>
#include <unistd.h>

#include "arch/device_registry.h"
#include "baselines/backend_factory.h"
#include "common/alloc_counter.h"
#include "common/bench_json.h"
#include "core/compile_service.h"
#include "core/compiler.h"
#include "core/mapper.h"
#include "core/pipeline.h"
#include "core/scheduler.h"
#include "core/scheduler_workspace.h"
#include "workloads/workloads.h"

// ---- instrumented global allocator ---------------------------------------
// Counts every allocation into the library's thread-local AllocCounter so
// the scheduler can report the allocations inside its hot loop. Deliberate
// pass-through otherwise: malloc/free semantics, no headers, no padding.
//
// Disabled under ASan/UBSan: the sanitizer runtime interposes its own
// allocator and flags the mix of interceptor-new and pass-through-free as
// an alloc-dealloc mismatch. The sanitize job checks memory safety; the
// zero-alloc gate runs on the plain build.

#if defined(__SANITIZE_ADDRESS__)
#define MUSSTI_BENCH_COUNT_ALLOCS 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define MUSSTI_BENCH_COUNT_ALLOCS 0
#endif
#endif
#ifndef MUSSTI_BENCH_COUNT_ALLOCS
#define MUSSTI_BENCH_COUNT_ALLOCS 1
#endif

#if MUSSTI_BENCH_COUNT_ALLOCS

namespace {

void *
countedAlloc(std::size_t size)
{
    ++mussti::AllocCounter::allocations;
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

} // namespace

void *operator new(std::size_t size) { return countedAlloc(size); }
void *operator new[](std::size_t size) { return countedAlloc(size); }
void *
operator new(std::size_t size, std::align_val_t align)
{
    ++mussti::AllocCounter::allocations;
    // aligned_alloc requires size to be a multiple of the alignment
    // (glibc tolerates violations, conforming libcs return NULL).
    const std::size_t a = static_cast<std::size_t>(align);
    const std::size_t rounded = size ? (size + a - 1) / a * a : a;
    if (void *p = std::aligned_alloc(a, rounded))
        return p;
    throw std::bad_alloc();
}
void *
operator new[](std::size_t size, std::align_val_t align)
{
    return operator new(size, align);
}
void operator delete(void *p) noexcept { std::free(p); }
void operator delete[](void *p) noexcept { std::free(p); }
void operator delete(void *p, std::size_t) noexcept { std::free(p); }
void operator delete[](void *p, std::size_t) noexcept { std::free(p); }
void operator delete(void *p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void *p, std::align_val_t) noexcept { std::free(p); }
void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

#endif // MUSSTI_BENCH_COUNT_ALLOCS

using namespace mussti;

namespace {

struct Tier
{
    const char *label;
    int qubits;
};

constexpr Tier kTiers[] = {{"small", 64}, {"medium", 160}, {"large", 288}};
constexpr const char *kFamilies[] = {"adder", "bv", "ghz", "qaoa"};

// The huge tier: 576 qubits (18 homogeneous modules), heavy families
// only, plus the same circuit on a 12-module heterogeneous device
// (fat-middle mixes, 48 qubits per module) through the registry spec
// grammar.
constexpr int kHugeQubits = 576;
constexpr const char *kHugeFamilies[] = {"adder", "qaoa"};
constexpr const char *kHugeHeteroName = "qaoa-hetero12";
constexpr const char *kHugeHeteroSpec =
    "eml:hetero=3.1.2-2.1.1-3.1.2-2.1.1-3.1.2-2.1.1-3.1.2-2.1.1-"
    "3.1.2-2.1.1-3.1.2-2.1.1,cap=16,maxq=48";

// The tiers the --require-speedup gate aggregates over.
constexpr const char *kGatedTiers[] = {"micro_scheduler/large",
                                       "micro_scheduler/huge"};

// The grid-router suite: a capacity-starved grid so the baselines'
// relocation/spill loops (hopDistance + nearestTrapWithSpace) dominate.
constexpr const char *kGridSpec = "grid:8x8,cap=4";
constexpr const char *kGridSuite = "grid_router/8x8cap4";
constexpr const char *kGridFamily = "qaoa";
constexpr int kGridQubits = 96;

double
toMs(std::chrono::steady_clock::duration d)
{
    return 1e3 * std::chrono::duration<double>(d).count();
}

/**
 * Time `repeats` compilations of one MUSS-TI workload through a shared
 * workspace: wall time is best-of-repeats; the allocation count is
 * taken from the LAST repeat, when the arena is warm (steady state).
 */
BenchRecord
measureMussti(const MusstiCompiler &compiler, const std::string &suite,
              const std::string &name, int qubits, int repeats)
{
    const Circuit qc = makeBenchmark(
        name.rfind("qaoa", 0) == 0 ? "qaoa" : name, qubits);
    const auto workspace = std::make_shared<SchedulerWorkspace>();

    BenchRecord record;
    record.suite = suite;
    record.name = name;
    record.qubits = qubits;
    record.repeats = repeats;
    record.wallMs = -1.0;

    for (int rep = 0; rep < repeats; ++rep) {
        const auto t0 = std::chrono::steady_clock::now();
        const CompileResult result = compiler.compile(qc, workspace);
        const auto t1 = std::chrono::steady_clock::now();
        const double wall_ms = toMs(t1 - t0);
        if (record.wallMs < 0.0 || wall_ms < record.wallMs) {
            record.wallMs = wall_ms;
            record.passTrace.clear();
            for (const PassTiming &timing : result.passTrace)
                record.passTrace.push_back(
                    {timing.pass, 1e3 * timing.seconds});
        }
        record.routingSteps = result.routingSteps;
        record.steadyAllocs =
            static_cast<long long>(result.schedulerHeapAllocs);
    }
    return record;
}

BenchRecord
measureGrid(const std::string &which, int repeats)
{
    const DeviceSpec spec = DeviceRegistry::parse(kGridSpec);
    const auto backend = makeGridBackend(which, spec.grid);
    const Circuit qc = makeBenchmark(kGridFamily, kGridQubits);

    BenchRecord record;
    record.suite = kGridSuite;
    record.name = which;
    record.qubits = kGridQubits;
    record.repeats = repeats;
    record.wallMs = -1.0;

    for (int rep = 0; rep < repeats; ++rep) {
        const auto t0 = std::chrono::steady_clock::now();
        const CompileResult result = backend->compile(qc);
        const auto t1 = std::chrono::steady_clock::now();
        const double wall_ms = toMs(t1 - t0);
        if (record.wallMs < 0.0 || wall_ms < record.wallMs) {
            record.wallMs = wall_ms;
            record.passTrace.clear();
            for (const PassTiming &timing : result.passTrace)
                record.passTrace.push_back(
                    {timing.pass, 1e3 * timing.seconds});
        }
    }
    return record;
}

// ---- delta-recompilation tier --------------------------------------------

struct DeltaTier
{
    const char *label;
    int qubits;
    int trotterSteps;
};

// Deep Ising workloads: many Trotter steps so the shared prefix dwarfs
// the edited suffix — the regime delta recompilation targets (think an
// interactive session appending layers or sweeping angles).
constexpr DeltaTier kDeltaTiers[] = {
    {"small", 32, 60}, {"medium", 48, 160}, {"large", 64, 480}};

constexpr const char *kDeltaSuite = "micro_scheduler/delta";

/**
 * The re-parameterize edit: same structure, rz angles nudged in the
 * last eighth of the gate list (an angle sweep touching the final
 * layers, as in variational fine-tuning). The early divergence point
 * is what distinguishes this scenario from append — the resume must
 * stop at the edit, not at the end of the base circuit.
 */
Circuit
reparamTail(const Circuit &base)
{
    Circuit edited(base.numQubits(), base.name());
    const std::size_t pivot = base.size() - base.size() / 8;
    for (std::size_t i = 0; i < base.size(); ++i) {
        Gate g = base[i];
        if (i >= pivot && g.kind == GateKind::Rz)
            g.param += 0.017;
        edited.add(g);
    }
    return edited;
}

/**
 * Measure one delta scenario at scheduler level. The base circuit runs
 * once, untimed, with checkpoint capture on; the edited circuit is
 * then scheduled `repeats` times cold (no candidates) and `repeats`
 * times warm (resuming from the capture run's snapshots), both
 * best-of-repeats through one shared workspace. Every warm run must
 * actually resume, and with `soak` > 0 the warm path re-runs that many
 * extra times asserting resume + zero loop allocations on each
 * iteration. A CompileService pass over the same (base, edited) pair
 * supplies the record's snapshot-cache counters. Failures clear `ok`.
 */
BenchRecord
measureDelta(const DeltaTier &tier, bool append, int repeats, int soak,
             bool &ok)
{
    const Circuit base = makeIsing(tier.qubits, tier.trotterSteps);
    const Circuit edited = append
        ? makeIsing(tier.qubits, tier.trotterSteps + 1)
        : reparamTail(base);

    // Trivial mapping: a single forward scheduling leg, the leg the
    // delta path resumes — so cold-vs-warm compares exactly the work
    // the snapshot machinery is supposed to skip.
    MusstiConfig config;
    config.mapping = MappingKind::Trivial;
    const auto device = DeviceRegistry::createEml(config.device,
                                                  tier.qubits);
    const PhysicalParams params;
    const MusstiScheduler scheduler(*device, params, config);

    const Circuit low_base = base.withSwapsDecomposed();
    const Circuit low_edit = edited.withSwapsDecomposed();
    const Placement initial = trivialPlacement(*device, tier.qubits);
    SchedulerWorkspace ws;

    // Untimed capture run over the base circuit supplies the snapshots.
    DeltaRequest capture;
    capture.checkpointEvery = 64;
    const MusstiScheduler::RunOutput captured =
        scheduler.run(low_base, initial, &ws, &capture);

    // Shared lowered prefix between base and edit, by direct compare —
    // the bench plays the role the compile pass's prefix-hash lookup
    // plays in production.
    std::size_t shared = 0;
    const std::size_t limit = std::min(low_base.size(), low_edit.size());
    while (shared < limit && low_base[shared] == low_edit[shared])
        ++shared;

    DeltaRequest resume;
    for (const ScheduleSnapshot &snap : captured.snapshots) {
        if (snap.loweredPrefixGates <= shared)
            resume.candidates.push_back({&snap, shared});
    }

    BenchRecord record;
    record.suite = kDeltaSuite;
    record.name = append ? "ising-append" : "ising-reparam";
    record.qubits = tier.qubits;
    record.repeats = repeats;
    record.wallMs = -1.0;

    double cold_ms = -1.0;
    for (int rep = 0; rep < repeats; ++rep) {
        const auto t0 = std::chrono::steady_clock::now();
        const MusstiScheduler::RunOutput out =
            scheduler.run(low_edit, initial, &ws);
        const auto t1 = std::chrono::steady_clock::now();
        const double wall_ms = toMs(t1 - t0);
        if (cold_ms < 0.0 || wall_ms < cold_ms)
            cold_ms = wall_ms;
        if (out.resumed) {
            std::printf("FAIL: %s/%s cold reference reports resumed\n",
                        kDeltaSuite, record.name.c_str());
            ok = false;
        }
    }

    const int warm_runs = repeats + soak;
    for (int rep = 0; rep < warm_runs; ++rep) {
        const auto t0 = std::chrono::steady_clock::now();
        const MusstiScheduler::RunOutput out =
            scheduler.run(low_edit, initial, &ws, &resume);
        const auto t1 = std::chrono::steady_clock::now();
        const double wall_ms = toMs(t1 - t0);
        if (record.wallMs < 0.0 || wall_ms < record.wallMs)
            record.wallMs = wall_ms;
        if (!out.resumed) {
            std::printf("FAIL: %s/%s warm run %d fell back to a cold "
                        "schedule\n", kDeltaSuite, record.name.c_str(),
                        rep);
            ok = false;
            break;
        }
        // The soak iterations (and every steady-state repeat) must keep
        // the resumed hot path allocation-free; rep 0 warms the arena.
        if (rep > 0 && out.loopHeapAllocs != 0 &&
            MUSSTI_BENCH_COUNT_ALLOCS) {
            std::printf("FAIL: %s/%s warm run %d performs %llu heap "
                        "allocations in the resumed scheduling loop "
                        "(want 0)\n", kDeltaSuite, record.name.c_str(),
                        rep,
                        static_cast<unsigned long long>(
                            out.loopHeapAllocs));
            ok = false;
            break;
        }
        record.routingSteps = out.routingSteps;
        record.steadyAllocs = static_cast<long long>(out.loopHeapAllocs);
    }
    record.deltaColdMs = cold_ms;
    if (record.wallMs > 0.0)
        record.deltaSpeedup = cold_ms / record.wallMs;

    // End-to-end verification through the CompileService snapshot tier:
    // submit base then edited and require the edited compile to resume
    // from the cached checkpoint. Untimed — the result cache is off so
    // the edited job must really compile, and the counters land in the
    // record as proof the production path (prefix-hash probe included)
    // serves this scenario.
    CompileServiceConfig svc;
    svc.numThreads = 1;
    svc.cacheCapacity = 0;
    svc.snapshotCacheCapacity = 32;
    CompileService service(svc);
    MusstiConfig delta_cfg = config;
    delta_cfg.deltaCompile = true;
    const auto backend = std::make_shared<MusstiCompiler>(delta_cfg);
    service.submit(backend, base).get();
    const CompileResult warm = service.submit(backend, edited).get();
    const CompileService::CacheStats stats = service.cacheStats();
    record.snapshotHits = static_cast<long long>(stats.snapshotHits);
    record.snapshotMisses = static_cast<long long>(stats.snapshotMisses);
    record.deltaResumes = static_cast<long long>(stats.deltaResumes);
    record.deltaFallbacks =
        static_cast<long long>(stats.deltaFallbacks);
    record.jobsFailed = static_cast<long long>(stats.jobsFailed);
    record.jobsTimedOut = static_cast<long long>(stats.jobsTimedOut);
    record.jobsCancelled = static_cast<long long>(stats.jobsCancelled);
    record.jobsRetried = static_cast<long long>(stats.jobsRetried);
    if (!warm.deltaResumed) {
        std::printf("FAIL: %s/%s did not delta-resume through the "
                    "CompileService\n", kDeltaSuite,
                    record.name.c_str());
        ok = false;
    }
    return record;
}

constexpr const char *kCacheSuite = "micro_scheduler/cache";

/**
 * Measure and verify the result-cache tier stack. A throwaway service
 * compiles an Ising workload into a scratch disk-tier directory; a
 * FRESH service on the same directory must then serve the identical
 * request from the persistent tier — bit-identical fingerprint, zero
 * recompiles — and a repeat on that second service must hit the
 * in-memory tier. `wall_ms` times the disk-tier hit (deserialize +
 * promote, no scheduling), and the record carries the per-tier
 * hit/miss/evict/corrupt counters the JSON schema grew for this suite.
 * Any miss, corrupt entry, or fingerprint drift clears `ok`.
 */
BenchRecord
measureCacheTiers(bool &ok)
{
    namespace fs = std::filesystem;
    const int qubits = 96;
    const Circuit circuit = makeIsing(qubits, 6);
    const auto backend = std::make_shared<MusstiCompiler>();

    const fs::path dir =
        fs::temp_directory_path() /
        ("mussti_bench_cache_" + std::to_string(::getpid()));
    std::error_code ignored;
    fs::remove_all(dir, ignored);
    fs::create_directories(dir);

    CompileServiceConfig svc;
    svc.numThreads = 1;
    svc.cacheCapacity = 8;
    svc.diskCachePath = dir.string();

    BenchRecord record;
    record.suite = kCacheSuite;
    record.name = "ising-disk-warm";
    record.qubits = qubits;
    record.repeats = 1;

    std::uint64_t cold_fingerprint = 0;
    {
        CompileService seeder(svc);
        cold_fingerprint =
            resultFingerprint(seeder.submit(backend, circuit).get());
    }

    CompileService service(svc); // fresh process stand-in, same dir
    const auto t0 = std::chrono::steady_clock::now();
    const CompileResult warm = service.submit(backend, circuit).get();
    const auto t1 = std::chrono::steady_clock::now();
    record.wallMs = toMs(t1 - t0);
    service.submit(backend, circuit).get(); // now a memory-tier hit

    const CompileService::CacheStats stats = service.cacheStats();
    record.cacheMemHits = static_cast<long long>(stats.memoryTier.hits);
    record.cacheMemMisses =
        static_cast<long long>(stats.memoryTier.misses);
    record.cacheMemEvictions =
        static_cast<long long>(stats.memoryTier.evictions);
    record.cacheDiskHits = static_cast<long long>(stats.diskTier.hits);
    record.cacheDiskMisses =
        static_cast<long long>(stats.diskTier.misses);
    record.cacheDiskEvictions =
        static_cast<long long>(stats.diskTier.evictions);
    record.cacheDiskCorrupt =
        static_cast<long long>(stats.diskTier.corrupt);

    if (resultFingerprint(warm) != cold_fingerprint) {
        std::printf("FAIL: %s/%s disk-tier result drifted from the "
                    "compiled one\n", kCacheSuite, record.name.c_str());
        ok = false;
    }
    if (stats.diskTier.hits < 1 || stats.memoryTier.hits < 1 ||
        stats.resultMisses != 0 || stats.diskTier.corrupt != 0) {
        std::printf("FAIL: %s/%s tier counters wrong (mem %llu/%llu, "
                    "disk %llu/%llu, corrupt %llu, recompiles %llu)\n",
                    kCacheSuite, record.name.c_str(),
                    static_cast<unsigned long long>(
                        stats.memoryTier.hits),
                    static_cast<unsigned long long>(
                        stats.memoryTier.misses),
                    static_cast<unsigned long long>(stats.diskTier.hits),
                    static_cast<unsigned long long>(
                        stats.diskTier.misses),
                    static_cast<unsigned long long>(
                        stats.diskTier.corrupt),
                    static_cast<unsigned long long>(stats.resultMisses));
        ok = false;
    }
    fs::remove_all(dir, ignored);
    return record;
}

const BenchRecord *
findBaseline(const std::vector<BenchRecord> &baseline,
             const BenchRecord &record)
{
    for (const BenchRecord &b : baseline) {
        if (b.suite == record.suite && b.name == record.name &&
            b.qubits == record.qubits)
            return &b;
    }
    return nullptr;
}

bool
isGatedTier(const std::string &suite)
{
    for (const char *tier : kGatedTiers) {
        if (suite == tier)
            return true;
    }
    return false;
}

void
printRecord(const char *tier, const BenchRecord &record,
            const std::string &speedup_cell)
{
    char allocs_cell[32] = "-";
    if (record.routingSteps > 0) {
        std::snprintf(allocs_cell, sizeof(allocs_cell), "%lld",
                      record.steadyAllocs);
    }
    std::printf("%-8s %-14s %7d %12.3f %10s %12s\n", tier,
                record.name.c_str(), record.qubits, record.wallMs,
                speedup_cell.c_str(), allocs_cell);
}

} // namespace

int
main(int argc, char **argv)
{
    int repeats = 5;
    std::string out_path = "bench_results.json";
    std::string baseline_path;
    double require_speedup = 0.0;
    double require_delta_speedup = 0.0;
    int soak = 0;
    bool assert_zero_allocs = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("missing value after " + arg);
            return argv[++i];
        };
        if (arg == "--repeats") {
            repeats = std::atoi(next().c_str());
            if (repeats < 1)
                fatal("--repeats must be >= 1");
        } else if (arg == "--quick") {
            repeats = 2;
        } else if (arg == "--out") {
            out_path = next();
        } else if (arg == "--baseline") {
            baseline_path = next();
        } else if (arg == "--assert-zero-allocs") {
            assert_zero_allocs = true;
        } else if (arg == "--require-speedup") {
            // Strict parse: atof would turn a typo into 0.0 and
            // silently disable the CI gate.
            const std::string value = next();
            char *end = nullptr;
            require_speedup = std::strtod(value.c_str(), &end);
            if (end == value.c_str() || *end != '\0' ||
                require_speedup <= 0.0)
                fatal("--require-speedup wants a positive number, got `" +
                      value + "`");
        } else if (arg == "--require-delta-speedup") {
            const std::string value = next();
            char *end = nullptr;
            require_delta_speedup = std::strtod(value.c_str(), &end);
            if (end == value.c_str() || *end != '\0' ||
                require_delta_speedup <= 0.0)
                fatal("--require-delta-speedup wants a positive number, "
                      "got `" + value + "`");
        } else if (arg == "--soak") {
            soak = std::atoi(next().c_str());
            if (soak < 1)
                fatal("--soak must be >= 1");
        } else {
            fatal("unknown argument: " + arg + " (see the file header "
                  "for usage)");
        }
    }

    // The gate must never pass vacuously: demanding a speedup with no
    // baseline to compare against is a misconfiguration, not a pass.
    if (require_speedup > 0.0 && baseline_path.empty())
        fatal("--require-speedup needs --baseline <old_results.json>");

    std::vector<BenchRecord> baseline;
    if (!baseline_path.empty())
        baseline = readBenchResults(baseline_path);

    // Allocation accounting only works when the steady state is
    // actually reached: the second repeat reuses the first's warm
    // arena. --quick already guarantees 2.
    if (assert_zero_allocs && repeats < 2)
        fatal("--assert-zero-allocs needs --repeats >= 2 (the first "
              "repeat warms the workspace)");

    std::cout << "micro_scheduler_bench: full-compile wall time, best of "
              << repeats << " repeats\n";
    std::printf("%-8s %-14s %7s %12s %10s %12s\n", "tier", "family",
                "qubits", "wall-ms", "speedup", "allocs");

    std::vector<BenchRecord> records;
    bool gate_ok = true;
    bool allocs_ok = true;
    std::map<std::string, std::pair<double, double>> gated; // wall, base

    const auto submit = [&](const char *tier, BenchRecord record) {
        std::string speedup_cell = "-";
        const BenchRecord *base = findBaseline(baseline, record);
        if (base != nullptr) {
            record.speedupVsBaseline = base->wallMs / record.wallMs;
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%.2fx",
                          record.speedupVsBaseline);
            speedup_cell = buf;
        }
        if (isGatedTier(record.suite)) {
            if (base != nullptr) {
                // Aggregate over MATCHED records only, so a partial
                // baseline compares like against like instead of
                // dividing mismatched workload sets.
                auto &[wall, base_wall] = gated[record.suite];
                wall += record.wallMs;
                base_wall += base->wallMs;
            } else if (!baseline.empty()) {
                // A gated workload with no baseline entry can never
                // prove its speedup — warn always, and fail the gate
                // instead of passing vacuously (e.g. a stale or
                // mismatched baseline file).
                std::printf("no baseline entry for %s/%s n=%d\n",
                            record.suite.c_str(), record.name.c_str(),
                            record.qubits);
                if (require_speedup > 0.0)
                    gate_ok = false;
            }
        }
        // Delta records' headline number is warm-vs-cold, measured in
        // this same run — show it in the speedup column (the baseline
        // comparison, when available, still lands in the JSON).
        if (record.deltaSpeedup > 0.0) {
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%.2fx",
                          record.deltaSpeedup);
            speedup_cell = buf;
        }
        // steadyAllocs < 0 is the "not measured" sentinel (suites that
        // never enter a scheduling loop, like the cache tier).
        if (assert_zero_allocs &&
            record.suite.rfind("micro_scheduler/", 0) == 0 &&
            record.steadyAllocs > 0) {
            std::printf("FAIL: %s/%s performs %lld steady-state heap "
                        "allocations in the scheduling loop (want 0)\n",
                        record.suite.c_str(), record.name.c_str(),
                        record.steadyAllocs);
            allocs_ok = false;
        }
        printRecord(tier, record, speedup_cell);
        records.push_back(std::move(record));
    };

    const MusstiCompiler compiler; // paper defaults, SABRE mapping
    for (const Tier &tier : kTiers) {
        for (const char *family : kFamilies) {
            submit(tier.label,
                   measureMussti(compiler,
                                 std::string("micro_scheduler/") +
                                     tier.label,
                                 family, tier.qubits, repeats));
        }
    }

    // Huge tier: homogeneous 18-module device for the heavy families...
    for (const char *family : kHugeFamilies) {
        submit("huge", measureMussti(compiler, "micro_scheduler/huge",
                                     family, kHugeQubits, repeats));
    }
    // ...and the registry-built 12-module heterogeneous EML fabric.
    {
        const DeviceSpec spec = DeviceRegistry::parse(kHugeHeteroSpec);
        MusstiConfig hetero_config;
        hetero_config.device = spec.eml;
        const MusstiCompiler hetero_compiler(hetero_config);
        submit("huge", measureMussti(hetero_compiler,
                                     "micro_scheduler/huge",
                                     kHugeHeteroName, kHugeQubits,
                                     repeats));
    }

    // Delta-recompilation tier: warm resume vs cold recompile of an
    // edited circuit, scheduler level (see the file header).
    bool delta_ok = true;
    for (const DeltaTier &tier : kDeltaTiers) {
        for (const bool append : {true, false}) {
            submit("delta",
                   measureDelta(tier, append, repeats, soak, delta_ok));
        }
    }

    // Cache-tier suite: one record proving the persistent disk tier
    // round-trips a compile bit-identically across services, with the
    // per-tier counters in the JSON. Wall time is informational; the
    // correctness checks are a hard gate.
    bool cache_ok = true;
    submit("cache", measureCacheTiers(cache_ok));

    // Grid-router suite (informational; the --require-speedup gate
    // stays on the MUSS-TI tiers).
    for (const char *which : {"murali", "dai", "mqt"})
        submit("grid", measureGrid(which, repeats));

    std::string context = "micro_scheduler_bench --repeats " +
        std::to_string(repeats);
    if (!baseline_path.empty())
        context += " --baseline " + baseline_path;
    writeBenchResults(out_path, records, context);
    std::cout << "wrote " << out_path << "\n";

    for (const char *tier : kGatedTiers) {
        const auto it = gated.find(tier);
        if (it == gated.end())
            continue;
        const auto [wall, base_wall] = it->second;
        const double speedup = wall > 0.0 ? base_wall / wall : 0.0;
        std::printf("%s aggregate speedup vs baseline: %.2fx "
                    "(%.2f ms -> %.2f ms)\n", tier, speedup, base_wall,
                    wall);
        if (require_speedup > 0.0 && speedup < require_speedup) {
            std::printf("FAIL: %s aggregate speedup below the required "
                        "%.2fx\n", tier, require_speedup);
            gate_ok = false;
        }
    }
    if (require_speedup > 0.0 && gated.empty()) {
        std::printf("FAIL: baseline matches no gated-tier record\n");
        gate_ok = false;
    }

    // The delta gate is self-contained: warm and cold come from this
    // run, aggregated as summed wall time so the large tier dominates.
    {
        double warm = 0.0, cold = 0.0;
        for (const BenchRecord &r : records) {
            if (r.suite == kDeltaSuite) {
                warm += r.wallMs;
                cold += r.deltaColdMs;
            }
        }
        if (warm > 0.0 && cold > 0.0) {
            const double speedup = cold / warm;
            std::printf("%s aggregate warm-vs-cold speedup: %.2fx "
                        "(%.2f ms cold -> %.2f ms warm)\n", kDeltaSuite,
                        speedup, cold, warm);
            if (require_delta_speedup > 0.0 &&
                speedup < require_delta_speedup) {
                std::printf("FAIL: delta aggregate speedup below the "
                            "required %.2fx\n", require_delta_speedup);
                delta_ok = false;
            }
        } else if (require_delta_speedup > 0.0) {
            std::printf("FAIL: no delta-tier record to gate\n");
            delta_ok = false;
        }
    }

    return gate_ok && allocs_ok && delta_ok && cache_ok ? 0 : 1;
}
