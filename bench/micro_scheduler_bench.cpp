/**
 * @file
 * Scheduler compile-time microbenchmark and the source of the repo's
 * BENCH_*.json trajectory.
 *
 * Times full MUSS-TI compilations (SABRE mapping, paper defaults)
 * across three workload tiers — small (64q), medium (160q), large
 * (288q) — for the Fig-10 families, taking the best of N repeats, and
 * emits machine-readable results (common/bench_json.h) including the
 * per-pass trace of the best run.
 *
 * A fourth suite, grid_router, times the grid baseline compilers
 * (murali/dai/mqt) on a registry-spec'd 8x8 grid whose relocation inner
 * loops lean on TargetDevice::hopDistance() — the table-lookup path —
 * so regressions in the shared device layer show up here even when the
 * MUSS-TI tiers are unaffected.
 *
 * Compilations go straight through the backends, NOT the shared
 * CompileService, so the result cache cannot fake the timings.
 *
 * Usage:
 *   micro_scheduler_bench [--repeats N] [--quick]
 *                         [--out bench_results.json]
 *                         [--baseline old_results.json]
 *                         [--require-speedup X]
 *
 * With --baseline, each record gains speedup_vs_baseline against the
 * matching (suite, name, qubits) entry of the old file, and the summary
 * reports the large tier's aggregate speedup (summed wall time, so the
 * heavy workloads dominate and sub-millisecond ones don't add noise).
 * --require-speedup X exits non-zero unless that aggregate reaches X
 * and every large-tier workload has a baseline entry (the CI perf
 * gate; it refuses to pass vacuously).
 */
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "arch/device_registry.h"
#include "baselines/backend_factory.h"
#include "common/bench_json.h"
#include "core/compiler.h"
#include "workloads/workloads.h"

using namespace mussti;

namespace {

struct Tier
{
    const char *label;
    int qubits;
};

constexpr Tier kTiers[] = {{"small", 64}, {"medium", 160}, {"large", 288}};
constexpr const char *kFamilies[] = {"adder", "bv", "ghz", "qaoa"};

// The grid-router suite: a capacity-starved grid so the baselines'
// relocation/spill loops (hopDistance + nearestTrapWithSpace) dominate.
constexpr const char *kGridSpec = "grid:8x8,cap=4";
constexpr const char *kGridSuite = "grid_router/8x8cap4";
constexpr const char *kGridFamily = "qaoa";
constexpr int kGridQubits = 96;

double
toMs(std::chrono::steady_clock::duration d)
{
    return 1e3 * std::chrono::duration<double>(d).count();
}

BenchRecord
measure(const std::string &tier, const std::string &family, int qubits,
        int repeats)
{
    const MusstiCompiler compiler; // paper defaults, SABRE mapping
    const Circuit qc = makeBenchmark(family, qubits);

    BenchRecord record;
    record.suite = "micro_scheduler/" + tier;
    record.name = family;
    record.qubits = qubits;
    record.repeats = repeats;
    record.wallMs = -1.0;

    for (int rep = 0; rep < repeats; ++rep) {
        const auto t0 = std::chrono::steady_clock::now();
        const CompileResult result = compiler.compile(qc);
        const auto t1 = std::chrono::steady_clock::now();
        const double wall_ms = toMs(t1 - t0);
        if (record.wallMs < 0.0 || wall_ms < record.wallMs) {
            record.wallMs = wall_ms;
            record.passTrace.clear();
            for (const PassTiming &timing : result.passTrace)
                record.passTrace.push_back(
                    {timing.pass, 1e3 * timing.seconds});
        }
    }
    return record;
}

BenchRecord
measureGrid(const std::string &which, int repeats)
{
    const DeviceSpec spec = DeviceRegistry::parse(kGridSpec);
    const auto backend = makeGridBackend(which, spec.grid);
    const Circuit qc = makeBenchmark(kGridFamily, kGridQubits);

    BenchRecord record;
    record.suite = kGridSuite;
    record.name = which;
    record.qubits = kGridQubits;
    record.repeats = repeats;
    record.wallMs = -1.0;

    for (int rep = 0; rep < repeats; ++rep) {
        const auto t0 = std::chrono::steady_clock::now();
        const CompileResult result = backend->compile(qc);
        const auto t1 = std::chrono::steady_clock::now();
        const double wall_ms = toMs(t1 - t0);
        if (record.wallMs < 0.0 || wall_ms < record.wallMs) {
            record.wallMs = wall_ms;
            record.passTrace.clear();
            for (const PassTiming &timing : result.passTrace)
                record.passTrace.push_back(
                    {timing.pass, 1e3 * timing.seconds});
        }
    }
    return record;
}

const BenchRecord *
findBaseline(const std::vector<BenchRecord> &baseline,
             const BenchRecord &record)
{
    for (const BenchRecord &b : baseline) {
        if (b.suite == record.suite && b.name == record.name &&
            b.qubits == record.qubits)
            return &b;
    }
    return nullptr;
}

} // namespace

int
main(int argc, char **argv)
{
    int repeats = 5;
    std::string out_path = "bench_results.json";
    std::string baseline_path;
    double require_speedup = 0.0;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("missing value after " + arg);
            return argv[++i];
        };
        if (arg == "--repeats") {
            repeats = std::atoi(next().c_str());
            if (repeats < 1)
                fatal("--repeats must be >= 1");
        } else if (arg == "--quick") {
            repeats = 2;
        } else if (arg == "--out") {
            out_path = next();
        } else if (arg == "--baseline") {
            baseline_path = next();
        } else if (arg == "--require-speedup") {
            // Strict parse: atof would turn a typo into 0.0 and
            // silently disable the CI gate.
            const std::string value = next();
            char *end = nullptr;
            require_speedup = std::strtod(value.c_str(), &end);
            if (end == value.c_str() || *end != '\0' ||
                require_speedup <= 0.0)
                fatal("--require-speedup wants a positive number, got `" +
                      value + "`");
        } else {
            fatal("unknown argument: " + arg + " (see the file header "
                  "for usage)");
        }
    }

    // The gate must never pass vacuously: demanding a speedup with no
    // baseline to compare against is a misconfiguration, not a pass.
    if (require_speedup > 0.0 && baseline_path.empty())
        fatal("--require-speedup needs --baseline <old_results.json>");

    std::vector<BenchRecord> baseline;
    if (!baseline_path.empty())
        baseline = readBenchResults(baseline_path);

    std::cout << "micro_scheduler_bench: full-compile wall time, best of "
              << repeats << " repeats\n";
    std::printf("%-8s %-6s %7s %12s %10s\n", "tier", "family", "qubits",
                "wall-ms", "speedup");

    std::vector<BenchRecord> records;
    bool gate_ok = true;
    double large_wall_ms = 0.0;
    double large_baseline_ms = 0.0;
    for (const Tier &tier : kTiers) {
        for (const char *family : kFamilies) {
            BenchRecord record = measure(tier.label, family, tier.qubits,
                                         repeats);
            std::string speedup_cell = "-";
            const BenchRecord *base = findBaseline(baseline, record);
            if (base != nullptr) {
                record.speedupVsBaseline = base->wallMs / record.wallMs;
                char buf[32];
                std::snprintf(buf, sizeof(buf), "%.2fx",
                              record.speedupVsBaseline);
                speedup_cell = buf;
            }
            if (std::strcmp(tier.label, "large") == 0) {
                if (base != nullptr) {
                    // Aggregate over MATCHED records only, so a partial
                    // baseline compares like against like instead of
                    // dividing mismatched workload sets.
                    large_wall_ms += record.wallMs;
                    large_baseline_ms += base->wallMs;
                } else if (!baseline.empty()) {
                    // A large-tier workload with no baseline entry can
                    // never prove its speedup — warn always, and fail
                    // the gate instead of passing vacuously (e.g. a
                    // stale or mismatched baseline file).
                    std::printf("no baseline entry for %s/%s n=%d\n",
                                tier.label, family, record.qubits);
                    if (require_speedup > 0.0)
                        gate_ok = false;
                }
            }
            std::printf("%-8s %-6s %7d %12.3f %10s\n", tier.label, family,
                        record.qubits, record.wallMs,
                        speedup_cell.c_str());
            records.push_back(std::move(record));
        }
    }

    // Grid-router suite (informational; the --require-speedup gate
    // stays on the large MUSS-TI tier).
    for (const char *which : {"murali", "dai", "mqt"}) {
        BenchRecord record = measureGrid(which, repeats);
        std::string speedup_cell = "-";
        const BenchRecord *base = findBaseline(baseline, record);
        if (base != nullptr) {
            record.speedupVsBaseline = base->wallMs / record.wallMs;
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%.2fx",
                          record.speedupVsBaseline);
            speedup_cell = buf;
        }
        std::printf("%-8s %-6s %7d %12.3f %10s\n", "grid", which,
                    record.qubits, record.wallMs, speedup_cell.c_str());
        records.push_back(std::move(record));
    }

    const double large_tier_speedup = large_baseline_ms > 0.0
        ? large_baseline_ms / large_wall_ms
        : 0.0;
    if (require_speedup > 0.0 && large_tier_speedup < require_speedup)
        gate_ok = false;

    std::string context = "micro_scheduler_bench --repeats " +
        std::to_string(repeats);
    if (!baseline_path.empty())
        context += " --baseline " + baseline_path;
    writeBenchResults(out_path, records, context);
    std::cout << "wrote " << out_path << "\n";

    if (large_tier_speedup > 0.0) {
        std::printf("large-tier aggregate speedup vs baseline: %.2fx "
                    "(%.2f ms -> %.2f ms)\n", large_tier_speedup,
                    large_baseline_ms, large_wall_ms);
    }
    if (!gate_ok) {
        std::printf("FAIL: large-tier aggregate speedup below the "
                    "required %.2fx\n", require_speedup);
        return 1;
    }
    return 0;
}
