/**
 * @file
 * google-benchmark microbenchmarks of the compiler pipeline stages:
 * DAG construction, trivial/SABRE mapping, full compilation, and the
 * baseline compilers, sized to show the O(n*g) scaling of section 5.6.
 */
#include <benchmark/benchmark.h>

#include "baselines/murali.h"
#include "core/compiler.h"
#include "core/mapper.h"
#include "dag/dag.h"
#include "workloads/workloads.h"

namespace {

using namespace mussti;

void
BM_DagConstruction(benchmark::State &state)
{
    const Circuit qc = makeRandomCircuit(
        static_cast<int>(state.range(0)),
        static_cast<int>(state.range(0)) * 10, 3);
    for (auto _ : state) {
        DependencyDag dag(qc);
        benchmark::DoNotOptimize(dag.remaining());
    }
    state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DagConstruction)->Range(32, 256)->Complexity();

void
BM_TrivialMapping(benchmark::State &state)
{
    MusstiConfig config;
    const int n = static_cast<int>(state.range(0));
    const EmlDevice device(config.device, n);
    for (auto _ : state) {
        Placement p = trivialPlacement(device, n);
        benchmark::DoNotOptimize(p.allPlaced());
    }
}
BENCHMARK(BM_TrivialMapping)->Range(32, 256);

void
BM_CompileGhzTrivial(benchmark::State &state)
{
    MusstiConfig config;
    config.mapping = MappingKind::Trivial;
    const MusstiCompiler compiler(config);
    const Circuit qc = makeGhz(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        auto result = compiler.compile(qc);
        benchmark::DoNotOptimize(result.metrics.shuttleCount);
    }
    state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_CompileGhzTrivial)->Range(32, 256)->Complexity();

void
BM_CompileAdderSabre(benchmark::State &state)
{
    const MusstiCompiler compiler;
    const Circuit qc = makeAdder(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        auto result = compiler.compile(qc);
        benchmark::DoNotOptimize(result.metrics.shuttleCount);
    }
}
BENCHMARK(BM_CompileAdderSabre)->Range(32, 128);

void
BM_CompileSqrtFull(benchmark::State &state)
{
    const MusstiCompiler compiler;
    const Circuit qc = makeSqrt(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        auto result = compiler.compile(qc);
        benchmark::DoNotOptimize(result.metrics.shuttleCount);
    }
}
BENCHMARK(BM_CompileSqrtFull)->Arg(63)->Arg(117);

void
BM_BaselineMurali(benchmark::State &state)
{
    const PhysicalParams params;
    const Circuit qc = makeAdder(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        MuraliCompiler compiler(GridConfig{3, 4, 16}, params);
        auto result = compiler.compile(qc);
        benchmark::DoNotOptimize(result.metrics.shuttleCount);
    }
}
BENCHMARK(BM_BaselineMurali)->Arg(32)->Arg(128);

} // namespace
