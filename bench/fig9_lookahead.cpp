/**
 * @file
 * Reproduces Fig 9: fidelity versus the SWAP-insertion look-ahead k in
 * {4, 6, 8, 10, 12} for QAOA_n256, Adder_n256, Random_n256, SQRT_n117,
 * and SQRT_n299. Paper shape: the optimal k is application-dependent;
 * nearest-neighbour apps (QAOA) are insensitive, long-distance apps
 * favour larger k up to a point.
 */
#include <iostream>

#include "bench_common.h"

using namespace mussti;
using namespace mussti::bench;

int
main()
{
    printHeader("Figure 9",
                "Look-ahead ability analysis (log10 fidelity vs k)");
    const std::vector<BenchmarkSpec> apps = {
        {"qaoa", 256}, {"adder", 256}, {"ran", 256},
        {"sqrt", 117}, {"sqrt", 299},
    };
    const std::vector<int> ks = {4, 6, 8, 10, 12};

    TextTable table;
    std::vector<std::string> header{"Application"};
    for (int k : ks)
        header.push_back("k=" + std::to_string(k));
    header.push_back("bestK");
    table.setHeader(header);

    for (const auto &spec : apps) {
        const Circuit qc = makeBenchmark(spec.family, spec.numQubits);
        std::vector<std::string> row{spec.label()};
        double best = -1e300;
        int best_k = 0;
        for (int k : ks) {
            MusstiConfig config;
            config.lookAhead = k;
            const auto result = runMussti(qc, config);
            char cell[32];
            std::snprintf(cell, sizeof(cell), "%.2f",
                          result.metrics.log10Fidelity());
            row.push_back(cell);
            if (result.metrics.lnFidelity > best) {
                best = result.metrics.lnFidelity;
                best_k = k;
            }
        }
        row.push_back(std::to_string(best_k));
        table.addRow(row);
    }
    table.print(std::cout);
    std::cout << "Paper: optimal k varies by application; k=8 is the "
                 "default.\n";
    return 0;
}
