/**
 * @file
 * Reproduces Fig 10: MUSS-TI compilation time versus application size
 * (128-299 qubits) for Adder, BV, GHZ, and QAOA. Paper shape: growth is
 * polynomial (O(n*g)), not exponential, with workload-dependent spikes.
 *
 * Besides the paper table, the run is recorded as machine-readable
 * bench JSON (common/bench_json.h, suite "fig10_compile_time") with the
 * per-pass trace of each compilation, extending the repo's BENCH_*.json
 * trajectory. Pass --out <path> to choose the file (default
 * bench_results_fig10.json).
 */
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/bench_json.h"

using namespace mussti;
using namespace mussti::bench;

int
main(int argc, char **argv)
{
    std::string out_path = "bench_results_fig10.json";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--out" && i + 1 < argc) {
            out_path = argv[++i];
        } else {
            fatal("unknown argument: " + arg + " (only --out <path>)");
        }
    }

    printHeader("Figure 10",
                "Compilation time (seconds) vs application size");
    // Even sizes keep the QAOA instances 3-regular (odd sizes use the
    // circulant fallback, which would add structure noise to the trend).
    const std::vector<int> sizes = {128, 160, 192, 224, 256, 288};
    const std::vector<std::string> families = {"adder", "bv", "ghz",
                                               "qaoa"};

    TextTable table;
    std::vector<std::string> header{"Size"};
    for (const auto &f : families)
        header.push_back(f);
    table.setHeader(header);

    std::vector<BenchRecord> records;
    for (int n : sizes) {
        std::vector<std::string> row{std::to_string(n)};
        for (const auto &family : families) {
            const Circuit qc = makeBenchmark(family, n);
            const auto result = runMussti(qc);
            char cell[32];
            std::snprintf(cell, sizeof(cell), "%.4f",
                          result.compileTimeSec);
            row.push_back(cell);

            BenchRecord record;
            record.suite = "fig10_compile_time";
            record.name = family;
            record.qubits = n;
            record.repeats = 1;
            record.wallMs = 1e3 * result.compileTimeSec;
            for (const PassTiming &timing : result.passTrace)
                record.passTrace.push_back(
                    {timing.pass, 1e3 * timing.seconds});
            records.push_back(std::move(record));
        }
        table.addRow(row);
    }
    table.print(std::cout);
    writeBenchResults(out_path, records, "fig10_compile_time");
    std::cout << "wrote " << out_path << "\n";
    std::cout << "Paper (Python): 0-12 s over this range; the C++ "
                 "implementation is faster but must show the same "
                 "polynomial growth.\n";
    return 0;
}
