/**
 * @file
 * Reproduces Fig 10: MUSS-TI compilation time versus application size
 * (128-299 qubits) for Adder, BV, GHZ, and QAOA. Paper shape: growth is
 * polynomial (O(n*g)), not exponential, with workload-dependent spikes.
 */
#include <iostream>

#include "bench_common.h"

using namespace mussti;
using namespace mussti::bench;

int
main()
{
    printHeader("Figure 10",
                "Compilation time (seconds) vs application size");
    // Even sizes keep the QAOA instances 3-regular (odd sizes use the
    // circulant fallback, which would add structure noise to the trend).
    const std::vector<int> sizes = {128, 160, 192, 224, 256, 288};
    const std::vector<std::string> families = {"adder", "bv", "ghz",
                                               "qaoa"};

    TextTable table;
    std::vector<std::string> header{"Size"};
    for (const auto &f : families)
        header.push_back(f);
    table.setHeader(header);

    for (int n : sizes) {
        std::vector<std::string> row{std::to_string(n)};
        for (const auto &family : families) {
            const Circuit qc = makeBenchmark(family, n);
            const auto result = runMussti(qc);
            char cell[32];
            std::snprintf(cell, sizeof(cell), "%.4f",
                          result.compileTimeSec);
            row.push_back(cell);
        }
        table.addRow(row);
    }
    table.print(std::cout);
    std::cout << "Paper (Python): 0-12 s over this range; the C++ "
                 "implementation is faster but must show the same "
                 "polynomial growth.\n";
    return 0;
}
