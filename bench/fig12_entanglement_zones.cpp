/**
 * @file
 * Reproduces Fig 12: circuit fidelity with one versus two entanglement
 * (optical) zones per module, over the large-scale suite (256-299
 * qubits). Paper shape: two zones win on most applications by spreading
 * fiber-port heat and eviction pressure.
 */
#include <iostream>

#include "bench_common.h"

using namespace mussti;
using namespace mussti::bench;

int
main()
{
    printHeader("Figure 12",
                "Single vs two entanglement zones (log10 fidelity)");
    TextTable table;
    table.setHeader({"Application", "SingleZone", "TwoZones", "winner"});

    int two_zone_wins = 0;
    for (const auto &spec : largeScaleSuite()) {
        const Circuit qc = makeBenchmark(spec.family, spec.numQubits);

        MusstiConfig one;
        const auto single = runMussti(qc, one);

        MusstiConfig two;
        two.device.numOpticalZones = 2;
        const auto dual = runMussti(qc, two);

        char single_cell[32], dual_cell[32];
        std::snprintf(single_cell, sizeof(single_cell), "%.1f",
                      single.metrics.log10Fidelity());
        std::snprintf(dual_cell, sizeof(dual_cell), "%.1f",
                      dual.metrics.log10Fidelity());
        const bool dual_wins =
            dual.metrics.lnFidelity >= single.metrics.lnFidelity;
        two_zone_wins += dual_wins;
        table.addRow({spec.label(), single_cell, dual_cell,
                      dual_wins ? "two" : "single"});
    }
    table.print(std::cout);
    std::cout << "Two zones win on " << two_zone_wins << "/"
              << table.rowCount()
              << " apps (paper: most applications favour two zones).\n";
    return 0;
}
