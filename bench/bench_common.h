/**
 * @file
 * Shared harness for the paper-reproduction bench binaries: compiler
 * invocation shortcuts, formatting of the paper's table cells, and the
 * standard architecture settings of section 4.
 */
#ifndef MUSSTI_BENCH_BENCH_COMMON_H
#define MUSSTI_BENCH_BENCH_COMMON_H

#include <string>

#include "arch/grid_device.h"
#include "baselines/dai.h"
#include "baselines/mqt_like.h"
#include "baselines/murali.h"
#include "common/csv.h"
#include "core/compiler.h"
#include "workloads/workloads.h"

namespace mussti::bench {

/** Pretty fidelity cell: fixed for >= 1e-3, scientific otherwise. */
std::string fidelityCell(const Metrics &metrics);

/** Integer cell. */
std::string intCell(double value);

/** Execution-time cell in microseconds. */
std::string timeCell(double value_us);

/** Compile with MUSS-TI paper defaults (overridable). */
CompileResult runMussti(const Circuit &circuit,
                        const MusstiConfig &config = {},
                        const PhysicalParams &params = {});

/** Compile with one of the named baselines on a grid. */
CompileResult runBaseline(const std::string &which, const Circuit &circuit,
                          const GridConfig &grid,
                          const PhysicalParams &params = {});

/** The paper's grid settings per suite (section 4). */
GridConfig smallGrid22();   ///< 2x2, capacity 12 (Table 2).
GridConfig smallGrid23();   ///< 2x3, capacity 8  (Table 2).
GridConfig smallGrid();     ///< 2x2, capacity 16 (Fig 6 small).
GridConfig mediumGrid();    ///< 3x4, capacity 16 (Fig 6 medium).
GridConfig largeGrid();     ///< 4x5, capacity 16 (Fig 6 large).

/** Section-4 architecture banner printed by every bench binary. */
void printHeader(const std::string &experiment,
                 const std::string &description);

} // namespace mussti::bench

#endif // MUSSTI_BENCH_BENCH_COMMON_H
