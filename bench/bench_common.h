/**
 * @file
 * Shared harness for the paper-reproduction bench binaries: compile
 * submission through the process-wide CompileService, formatting of the
 * paper's table cells, and the standard architecture settings of
 * section 4.
 *
 * Benches fan out: submit every compilation of a suite up front (the
 * service spreads them across its worker pool), then collect futures in
 * row order. Sequential helpers (runMussti/runBaseline) remain for
 * single-shot call sites and also route through the service, so every
 * bench shares the result cache.
 */
#ifndef MUSSTI_BENCH_BENCH_COMMON_H
#define MUSSTI_BENCH_BENCH_COMMON_H

#include <future>
#include <memory>
#include <string>

#include "arch/device_registry.h"
#include "arch/grid_device.h"
#include "baselines/backend_factory.h"
#include "common/csv.h"
#include "core/compile_service.h"
#include "core/compiler.h"
#include "workloads/workloads.h"

namespace mussti::bench {

/** Pretty fidelity cell: fixed for >= 1e-3, scientific otherwise. */
std::string fidelityCell(const Metrics &metrics);

/** Integer cell. */
std::string intCell(double value);

/** Execution-time cell in microseconds. */
std::string timeCell(double value_us);

/**
 * The process-wide compile service every bench submits through.
 * Pool size = hardware concurrency, overridable with the
 * MUSSTI_BENCH_THREADS environment variable.
 */
CompileService &sharedService();

/** Enqueue a MUSS-TI compilation (paper defaults, overridable). */
std::future<CompileResult>
submitMussti(const Circuit &circuit, const MusstiConfig &config = {},
             const PhysicalParams &params = {});

/** Enqueue one of the named baselines on a grid. */
std::future<CompileResult>
submitBaseline(const std::string &which, const Circuit &circuit,
               const GridConfig &grid, const PhysicalParams &params = {});

/**
 * Enqueue a MUSS-TI compilation on a DeviceRegistry spec ("eml:...",
 * including heterogeneous eml:hetero=... mixes); other MUSS-TI knobs
 * stay at paper defaults.
 */
std::future<CompileResult>
submitMusstiOnSpec(const Circuit &circuit, const std::string &device_spec,
                   const PhysicalParams &params = {});

/** Compile with MUSS-TI paper defaults (overridable); blocks. */
CompileResult runMussti(const Circuit &circuit,
                        const MusstiConfig &config = {},
                        const PhysicalParams &params = {});

/** Compile with one of the named baselines on a grid; blocks. */
CompileResult runBaseline(const std::string &which, const Circuit &circuit,
                          const GridConfig &grid,
                          const PhysicalParams &params = {});

/**
 * The paper's grid settings per suite (section 4), selected by
 * DeviceRegistry spec so every bench exercises the same parsing path
 * as the CLI.
 */
GridConfig smallGrid22();   ///< grid:2x2,cap=12 (Table 2).
GridConfig smallGrid23();   ///< grid:3x2,cap=8  (Table 2).
GridConfig smallGrid();     ///< grid:2x2,cap=16 (Fig 6 small).
GridConfig mediumGrid();    ///< grid:4x3,cap=16 (Fig 6 medium).
GridConfig largeGrid();     ///< grid:5x4,cap=16 (Fig 6 large).

/** Section-4 architecture banner printed by every bench binary. */
void printHeader(const std::string &experiment,
                 const std::string &description);

} // namespace mussti::bench

#endif // MUSSTI_BENCH_BENCH_COMMON_H
